"""Mixed-workload scheduling: checkers and application threads sharing
the little cores.

Fig. 1 of the paper shows the point of OS-controlled scheduling: while
little cores verify the big core's segments, the *same* cores run other
threads in the gaps ("HW for App. / HW for Chk." alternating on one
core).  The OS can do this because verification occupancy is visible to
the scheduler: a core is reserved for its checker thread only from SRCP
arrival to verdict.

:class:`MixedWorkloadSchedule` takes a finished MEEK run, extracts each
little core's verification busy intervals, and fills the idle gaps with
background application threads (Algorithm 2 context switches, with the
``l.mode`` flip charged on every boundary).  The result quantifies how
much non-checking work the little cores still deliver — the utilization
argument for heterogeneous detection over dedicated lockstep cores.
"""

from dataclasses import dataclass, field

from repro.common.errors import SimulationError

#: Big-core cycles charged per little-core context switch (Algorithm 2:
#: save/restore plus the l.mode flip).
CONTEXT_SWITCH_CYCLES = 100


@dataclass
class BackgroundThread:
    """A non-checked thread wanting time on a little core."""

    name: str
    required_cycles: int
    completed_cycles: int = 0
    finish_cycle: float = None
    slices: list = field(default_factory=list)  # (core, start, end)

    @property
    def done(self):
        return self.completed_cycles >= self.required_cycles


class MixedWorkloadSchedule:
    """Fill little-core idle gaps with background threads."""

    def __init__(self, meek_result, horizon=None):
        self.result = meek_result
        self.num_cores = len(meek_result.controller.pipelines)
        self.horizon = horizon if horizon is not None else \
            meek_result.drain_cycle
        self._busy = self._verification_intervals()

    def _verification_intervals(self):
        """Per-core sorted (start, end) verification reservations."""
        controller = self.result.controller
        busy = {core: [] for core in range(self.num_cores)}
        for seg in controller.segments:
            checker = controller.checkers.get(seg.seg_id)
            if checker is None or checker.verdict is None:
                continue
            start = checker.start_cycle
            end = checker.verdict.finish_cycle
            if end > start:
                busy[seg.assigned_core].append((start, end))
        for intervals in busy.values():
            intervals.sort()
        return busy

    def idle_gaps(self, core):
        """Idle (start, end) windows on ``core`` up to the horizon."""
        gaps = []
        cursor = 0.0
        for start, end in self._busy[core]:
            if start > cursor:
                gaps.append((cursor, start))
            cursor = max(cursor, end)
        if cursor < self.horizon:
            gaps.append((cursor, self.horizon))
        return gaps

    def verification_utilization(self, core):
        """Fraction of the horizon ``core`` spends verifying."""
        if self.horizon <= 0:
            return 0.0
        busy = sum(end - start for start, end in self._busy[core])
        return min(1.0, busy / self.horizon)

    def schedule(self, threads):
        """Greedy gap-filling of ``threads`` onto the little cores.

        Each occupied gap pays the Algorithm 2 context-switch cost on
        entry (the checker thread must be restored before the next
        segment, so leaving a gap costs nothing extra).  Returns the
        threads, with slices and finish times filled in.
        """
        # Collect all gaps across cores, earliest first.
        all_gaps = []
        for core in range(self.num_cores):
            for start, end in self.idle_gaps(core):
                all_gaps.append((start, end, core))
        all_gaps.sort()

        pending = list(threads)
        for start, end, core in all_gaps:
            cursor = start
            while pending and cursor + CONTEXT_SWITCH_CYCLES < end:
                thread = pending[0]
                if thread.done:
                    pending.pop(0)
                    continue
                cursor += CONTEXT_SWITCH_CYCLES
                needed = thread.required_cycles - thread.completed_cycles
                slice_end = min(end, cursor + needed)
                run = slice_end - cursor
                if run <= 0:
                    break
                thread.completed_cycles += run
                thread.slices.append((core, cursor, slice_end))
                cursor = slice_end
                if thread.done:
                    thread.finish_cycle = slice_end
                    pending.pop(0)
        return threads

    def report(self, threads):
        finished = [t for t in threads if t.done]
        background_cycles = sum(t.completed_cycles for t in threads)
        return {
            "horizon": self.horizon,
            "threads_finished": len(finished),
            "threads_total": len(threads),
            "background_cycles": background_cycles,
            "verification_utilization": {
                core: self.verification_utilization(core)
                for core in range(self.num_cores)},
            "background_utilization": (
                background_cycles / (self.horizon * self.num_cores)
                if self.horizon else 0.0),
        }


def overlap(slice_a, slice_b):
    """Whether two (core, start, end) slices overlap on the same core."""
    core_a, start_a, end_a = slice_a
    core_b, start_b, end_b = slice_b
    return core_a == core_b and start_a < end_b and start_b < end_a


def validate_schedule(schedule, threads):
    """Invariant checks: no slice overlaps another slice or any
    verification reservation.  Raises :class:`SimulationError`."""
    slices = [s for t in threads for s in t.slices]
    for i, a in enumerate(slices):
        for b in slices[i + 1:]:
            if overlap(a, b):
                raise SimulationError(f"background slices overlap: {a}, {b}")
    for core, intervals in schedule._busy.items():
        for start, end in intervals:
            for s in slices:
                if overlap((core, start, end), s):
                    raise SimulationError(
                        f"slice {s} overlaps verification ({core}, "
                        f"{start}, {end})")
    return True
