"""The Fig. 5 page-fault deadlock, and its fix.

The hazard (Sec. IV-C): the finite LSL makes the checker a lock the
big core needs (a full log blocks the main thread's commits).  If the
checker can *overtake* the main thread, it may instruction-fault on a
page not yet resident and its page-fault handling needs a kernel lock
— which the main thread may hold.  Then:

* main thread: holds ``page_lock``, blocked pushing into a full LSL;
* checker: blocked on ``page_lock``, therefore not consuming the LSL.

A cycle (Fig. 5a).  The fix (Fig. 5b): keep the checker at least one
instruction behind the main thread — the main thread always reaches a
faulting instruction first, so by the time the checker replays it the
page is resident and the checker never takes a lock.

:class:`PageFaultScenario` plays this out as a deterministic tick-level
simulation with a real bounded log and a real mutex; buggy mode
genuinely deadlocks (detected through the wait-for cycle), fixed mode
genuinely completes.
"""

from repro.common.errors import DeadlockError
from repro.osmodel.locks import DeadlockDetector, Mutex
from repro.osmodel.thread import Task, TaskKind


class ScenarioResult:
    """Outcome of one scenario run."""

    def __init__(self, deadlocked, cycle_description, ticks, main_progress,
                 checker_progress, timeline):
        self.deadlocked = deadlocked
        self.cycle_description = cycle_description
        self.ticks = ticks
        self.main_progress = main_progress
        self.checker_progress = checker_progress
        self.timeline = timeline

    def __repr__(self):
        status = ("DEADLOCK: " + self.cycle_description if self.deadlocked
                  else "completed")
        return (f"ScenarioResult({status}, ticks={self.ticks}, "
                f"main={self.main_progress}, checker={self.checker_progress})")


class PageFaultScenario:
    """Deterministic reproduction of Fig. 5.

    Parameters model the paper's timeline: the main thread holds a
    kernel lock across a window of instructions (a syscall touching the
    page tables), pages become resident only once the main thread first
    executes them, and the checker replays at double speed so it will
    catch up and — unless held one instruction behind — overtake.
    """

    def __init__(self, one_instruction_behind, total_instructions=120,
                 lsl_capacity=8, lock_window=(40, 70), checker_speed=2):
        self.one_behind = one_instruction_behind
        self.total = total_instructions
        self.lsl_capacity = lsl_capacity
        self.lock_window = lock_window
        self.checker_speed = checker_speed

    def run(self, max_ticks=10_000, raise_on_deadlock=False):
        main = Task("main", kind=TaskKind.APPLICATION)
        checker = Task("main.checker0", kind=TaskKind.CHECKER, pinned_core=1)
        page_lock = Mutex("page_lock")
        detector = DeadlockDetector()
        timeline = []

        main_progress = 0          # instructions committed by the big core
        checker_progress = 0       # instructions replayed by the checker
        resident = set()           # instructions whose pages are resident
        log_entries = 0            # outstanding LSL entries
        checker_blocked_on_lock = False
        lock_acquired = False

        for tick in range(1, max_ticks + 1):
            # --- main thread (big core), one instruction per tick -----
            if main_progress < self.total:
                start, end = self.lock_window
                if main_progress == start and not lock_acquired:
                    # Kernel operation: take the page-table lock.
                    if page_lock.try_acquire(main):
                        lock_acquired = True
                        timeline.append((tick, "main", "acquire page_lock"))
                if log_entries >= self.lsl_capacity:
                    # LSL full: the checker is a lock the big core needs.
                    detector.wait(main, checker, "LSL full")
                    timeline.append((tick, "main", "blocked on full LSL"))
                else:
                    detector.clear(main)
                    resident.add(main_progress)
                    main_progress += 1
                    log_entries += 1
                    if lock_acquired and main_progress >= end:
                        released_to = page_lock.release(main)
                        lock_acquired = False
                        timeline.append((tick, "main", "release page_lock"))
                        if released_to is checker:
                            checker_blocked_on_lock = False
                            detector.clear(checker)

            # --- checker thread (little core) --------------------------
            for _ in range(self.checker_speed):
                if checker_blocked_on_lock:
                    break
                if checker_progress >= self.total:
                    break
                if main_progress >= self.total:
                    # Main thread finished: the segment is closed and
                    # the checker may drain to the final RCP.
                    limit = self.total
                elif self.one_behind:
                    limit = main_progress - 1
                else:
                    limit = main_progress + 1  # may overtake
                if checker_progress >= limit:
                    break  # nothing more to replay yet
                if checker_progress >= main_progress:
                    # Overtake: replaying an instruction the main thread
                    # has not reached — its page is not resident.
                    if checker_progress not in resident:
                        if page_lock.try_acquire(checker):
                            # Handle the fault ourselves; page it in.
                            resident.add(checker_progress)
                            page_lock.release(checker)
                            timeline.append((tick, "checker",
                                             "self-handled ifetch fault"))
                        else:
                            checker_blocked_on_lock = True
                            detector.wait(checker, page_lock.owner,
                                          "page_lock")
                            timeline.append((tick, "checker",
                                             "FAULT: blocked on page_lock"))
                            break
                if log_entries > 0:
                    log_entries -= 1
                checker_progress += 1

            if (main_progress >= self.total
                    and checker_progress >= self.total):
                return ScenarioResult(False, None, tick, main_progress,
                                      checker_progress, timeline)

            cycle = detector.find_cycle()
            if cycle is not None:
                description = detector.describe_cycle()
                timeline.append((tick, "kernel",
                                 f"deadlock detected: {description}"))
                if raise_on_deadlock:
                    raise DeadlockError(description)
                return ScenarioResult(True, description, tick, main_progress,
                                      checker_progress, timeline)

        return ScenarioResult(True, "no progress within tick budget",
                              max_ticks, main_progress, checker_progress,
                              timeline)
