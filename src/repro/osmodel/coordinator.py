"""The checker-thread programming model (Sec. IV-B).

Programs are not transparently checked: their ``main`` is wrapped with
*coordinator* constructor/destructor functions that (1) request checker
resources from the OS before ``main`` runs, (2) spawn the checker
threads of Algorithm 2, and (3) verify the checking outputs afterwards,
calling fault-handling code if any segment failed.

This module implements that user-level runtime against the kernel
interface and a finished MEEK run: the constructor path issues the
``b.hook`` syscalls, the Algorithm 2 checker loop consumes verdicts via
``l.rslt``, and a detected error raises the interrupt path into the
registered fault handler — exactly the control flow of Algorithm 2,
lines 15-21.
"""

from dataclasses import dataclass, field

from repro.common.errors import SimulationError
from repro.isa.meek import MODE_CHECK
from repro.osmodel.syscall import KernelInterface
from repro.osmodel.thread import Task, TaskKind


@dataclass
class FaultReport:
    """What ``MEEK.ReportErr()`` hands to the fault handler."""

    seg_id: int
    detect_cycle: float
    reason: str
    little_core: int


@dataclass
class CoordinatorResult:
    """Outcome of a coordinated (wrapped) execution."""

    verified: bool
    segments_checked: int
    faults: list = field(default_factory=list)
    handler_invocations: int = 0


class CheckedProcess:
    """A process whose ``main`` was wrapped by the MEEK coordinator.

    Lifecycle::

        process = CheckedProcess(kernel, checker_cores=(0, 1, 2, 3))
        process.construct(big_core_id=0)   # before main: request cores
        result = process.verify(meek_run)  # after main: l.rslt sweep
        process.destruct()                 # release the little cores
    """

    def __init__(self, kernel, checker_cores, fault_handler=None,
                 name="app"):
        if not isinstance(kernel, KernelInterface):
            raise SimulationError("coordinator needs the kernel interface")
        self.kernel = kernel
        self.checker_cores = tuple(checker_cores)
        self.fault_handler = fault_handler
        self.name = name
        self.task = Task(name, kind=TaskKind.APPLICATION,
                         checker_index=self.checker_cores)
        self.checker_tasks = []
        self._constructed = False
        self._destructed = False

    # -- constructor (runs before main) ---------------------------------

    def construct(self, big_core_id=0):
        """Request checker resources from the OS (syscalls: the b.*
        operations are Priv 1) and spawn the checker threads."""
        if self._constructed:
            raise SimulationError(f"{self.name}: constructor ran twice")
        for core in self.checker_cores:
            self.kernel.syscall("b.hook", big_core_id, core)
            self.kernel.syscall("l.mode", core, MODE_CHECK)
            self.checker_tasks.append(
                Task(f"{self.name}.checker{core}", kind=TaskKind.CHECKER,
                     pinned_core=core))
        self._constructed = True
        return self.checker_tasks

    # -- the Algorithm 2 verification sweep -------------------------------

    def verify(self, meek_result):
        """Consume every segment verdict through ``l.rslt``.

        Mirrors Algorithm 2: for each completed checkpoint the checker
        thread returns its result; a failing ``l.rslt`` triggers
        ``MEEK.ReportErr()`` — modelled as the fault-handler callback.
        """
        if not self._constructed:
            raise SimulationError(
                f"{self.name}: verify before the constructor ran")
        faults = []
        invocations = 0
        for verdict in meek_result.verdicts:
            rslt_ok = verdict.ok  # the l.rslt read-back
            if not rslt_ok:
                segment = meek_result.segments[verdict.seg_id]
                report = FaultReport(
                    seg_id=verdict.seg_id,
                    detect_cycle=verdict.detect_cycle,
                    reason=verdict.reason,
                    little_core=segment.assigned_core,
                )
                faults.append(report)
                if self.fault_handler is not None:
                    self.fault_handler(report)
                    invocations += 1
        return CoordinatorResult(
            verified=not faults,
            segments_checked=len(meek_result.verdicts),
            faults=faults,
            handler_invocations=invocations,
        )

    # -- destructor (runs after main) ----------------------------------------

    def destruct(self):
        """Release the reserved little cores back to the OS."""
        if self._destructed:
            raise SimulationError(f"{self.name}: destructor ran twice")
        from repro.isa.meek import MODE_APPLICATION

        for core in self.checker_cores:
            self.kernel.syscall("l.mode", core, MODE_APPLICATION)
        self._destructed = True


def run_checked(program, kernel=None, config=None, fault_handler=None,
                injector=None, max_instructions=None):
    """End-to-end convenience: wrap, run under MEEK, verify, unwrap.

    Returns ``(coordinator_result, meek_result)``.
    """
    from repro.common.config import default_meek_config
    from repro.core.system import MeekSystem
    from repro.osmodel.scheduler import MeekDevice

    if config is None:
        config = default_meek_config()
    if kernel is None:
        kernel = KernelInterface(MeekDevice(config.num_little_cores))
    process = CheckedProcess(kernel,
                             checker_cores=range(config.num_little_cores),
                             fault_handler=fault_handler,
                             name=program.name)
    process.construct()
    meek_result = MeekSystem(config, injector=injector).run(
        program, max_instructions=max_instructions)
    outcome = process.verify(meek_result)
    process.destruct()
    return outcome, meek_result
