"""Context switching with MEEK hooks (Algorithms 1 and 2).

:class:`MeekScheduler` implements the two modified context-switch
functions line-for-line.  The hardware side is abstracted behind
:class:`MeekDevice`, which records every MEEK-ISA operation in order so
tests can assert exact orderings (e.g. ``b.check(DISABLE)`` strictly
before interrupts are disabled, re-enable strictly last before the
return jump).
"""

from repro.common.errors import SimulationError
from repro.isa.meek import CHECK_DISABLE, CHECK_ENABLE, MODE_APPLICATION, MODE_CHECK
from repro.osmodel.thread import Task, TaskKind, TaskState


class MeekDevice:
    """The kernel's view of the MEEK hardware (DEU + MSUs)."""

    def __init__(self, num_little_cores=4):
        self.num_little_cores = num_little_cores
        self.checking_enabled = True
        self.hooks = {}          # little core -> big core id
        self.modes = {core: MODE_APPLICATION
                      for core in range(num_little_cores)}
        self.op_log = []         # (op, args) in issue order

    def b_check(self, enable):
        self.op_log.append(("b.check", enable))
        self.checking_enabled = enable == CHECK_ENABLE

    def b_hook(self, big_core, little_core):
        if not 0 <= little_core < self.num_little_cores:
            raise SimulationError(f"b.hook: no little core {little_core}")
        self.op_log.append(("b.hook", big_core, little_core))
        self.hooks[little_core] = big_core

    def l_mode(self, little_core, mode):
        if not 0 <= little_core < self.num_little_cores:
            raise SimulationError(f"l.mode: no little core {little_core}")
        self.op_log.append(("l.mode", little_core, mode))
        self.modes[little_core] = mode

    def ops_of(self, name):
        return [entry for entry in self.op_log if entry[0] == name]


class MeekScheduler:
    """A minimal kernel scheduler carrying the Algorithm 1/2 changes."""

    def __init__(self, device, big_core_id=0):
        self.device = device
        self.big_core_id = big_core_id
        self.run_queue = []
        self.current = {"big": None}
        self.interrupts_enabled = True
        self.trace = []

    # -- run queue ---------------------------------------------------------

    def submit(self, task):
        self.run_queue.append(task)

    def _find_next(self):
        """Kernel.Find_next(): oldest READY task (round robin)."""
        for index, task in enumerate(self.run_queue):
            if task.state is TaskState.READY:
                return self.run_queue.pop(index)
        return None

    # -- Algorithm 1: big core's context switch -------------------------------

    def context_switch_big(self, current):
        """Switch the big core from ``current`` to the next task.

        Blue lines of Algorithm 1: checking is disabled across the
        switch, and a newly released task gets its checker little cores
        hooked before first dispatch.
        """
        self.device.b_check(CHECK_DISABLE)                 # line 3
        self.interrupts_enabled = False                    # line 4
        if current is not None:
            current.save_context(current.context)          # line 7
            if current.state is TaskState.RUNNING:
                current.state = TaskState.READY
                self.run_queue.append(current)
        next_task = self._find_next()                      # line 8
        if next_task is None:
            next_task = current
        if next_task is not None and next_task.new_release:
            for little_core in next_task.checker_index:    # lines 10-13
                self.device.b_hook(self.big_core_id, little_core)
            next_task.new_release = False                  # Context.init
        elif next_task is not None:
            next_task.restore_context()                    # line 16
        if next_task is not None:
            next_task.state = TaskState.RUNNING
            next_task.dispatch_count += 1
        self.current["big"] = next_task                    # line 18
        self.interrupts_enabled = True                     # line 19
        self.device.b_check(CHECK_ENABLE)                  # line 20
        self.trace.append(("big", next_task.name if next_task else None))
        return next_task                                   # line 21: jalr

    # -- Algorithm 2: little core's context switch ------------------------------

    def context_switch_little(self, core_id, current, next_task):
        """Switch little core ``core_id`` to ``next_task``.

        The only modification (Algorithm 2, lines 3-8): default to
        application mode, and flip to check mode when the incoming task
        is a checker thread.
        """
        self.device.l_mode(core_id, MODE_APPLICATION)      # line 3
        if current is not None and current.state is TaskState.RUNNING:
            current.save_context(current.context)
            current.state = TaskState.READY
        if next_task is not None:
            if next_task.is_checker_thread:                # lines 6-8
                if (next_task.pinned_core is not None
                        and next_task.pinned_core != core_id):
                    raise SimulationError(
                        f"checker {next_task.name} pinned to core "
                        f"{next_task.pinned_core}, dispatched on {core_id}")
                self.device.l_mode(core_id, MODE_CHECK)
            next_task.state = TaskState.RUNNING
            next_task.dispatch_count += 1
        self.trace.append((f"little{core_id}",
                           next_task.name if next_task else None))
        return next_task                                   # line 9: jalr


def make_checked_application(name, checker_cores):
    """An application task whose main() was wrapped by the constructor
    function (Sec. IV-B): checker threads are created with it, one per
    reserved little core."""
    app = Task(name, kind=TaskKind.APPLICATION, checker_index=checker_cores)
    checkers = [Task(f"{name}.checker{core}", kind=TaskKind.CHECKER,
                     pinned_core=core)
                for core in checker_cores]
    return app, checkers
