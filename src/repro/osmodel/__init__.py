"""Operating-system model (Sec. IV).

MEEK constrains kernel changes to the context-switch path: the big
core's scheduler brackets every switch with ``b.check`` and hooks
little cores to newly released threads (Algorithm 1); the little core's
scheduler flips the MSU mode when a checker thread is scheduled
(Algorithm 2); the checker thread itself is a small user-level loop
built from the MEEK ISA.

The package also reproduces the kernel-verification deadlock of Fig. 5:
a checker thread that overtakes the main thread can page-fault on an
instruction and need a lock the main thread holds, while the main
thread is blocked on the finite LSL — a cycle.  Keeping the checker one
instruction behind (plus I/O synchronization) makes the fault
impossible and the system live.
"""

from repro.osmodel.coordinator import (
    CheckedProcess,
    CoordinatorResult,
    FaultReport,
    run_checked,
)
from repro.osmodel.locks import DeadlockDetector, Mutex
from repro.osmodel.pagefault import PageFaultScenario, ScenarioResult
from repro.osmodel.scheduler import MeekDevice, MeekScheduler
from repro.osmodel.simulation import (
    BackgroundThread,
    MixedWorkloadSchedule,
    validate_schedule,
)
from repro.osmodel.syscall import KernelInterface
from repro.osmodel.thread import Task, TaskKind, TaskState

__all__ = [
    "BackgroundThread",
    "CheckedProcess",
    "CoordinatorResult",
    "DeadlockDetector",
    "FaultReport",
    "run_checked",
    "KernelInterface",
    "MeekDevice",
    "MeekScheduler",
    "MixedWorkloadSchedule",
    "Mutex",
    "PageFaultScenario",
    "ScenarioResult",
    "Task",
    "TaskKind",
    "TaskState",
    "validate_schedule",
]
