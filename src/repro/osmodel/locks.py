"""Kernel locks and wait-for-cycle detection.

The Fig. 5 deadlock is a classic wait-for cycle with an unusual edge:
the finite LSL acts as a lock the checker holds and the big core needs.
:class:`DeadlockDetector` finds cycles over explicit Mutex edges *and*
externally registered waits (like that LSL edge).
"""

from repro.common.errors import SimulationError


class Mutex:
    """A kernel mutex with an owner and a FIFO wait queue."""

    def __init__(self, name):
        self.name = name
        self.owner = None
        self.waiters = []
        self.acquisitions = 0

    @property
    def held(self):
        return self.owner is not None

    def try_acquire(self, task):
        """Attempt to take the lock; returns ``True`` on success."""
        if self.owner is task:
            raise SimulationError(
                f"{task.name} re-acquiring non-recursive mutex {self.name}")
        if self.owner is None:
            self.owner = task
            self.acquisitions += 1
            return True
        if task not in self.waiters:
            self.waiters.append(task)
        return False

    def release(self, task):
        """Release and hand off to the oldest waiter (returns it)."""
        if self.owner is not task:
            raise SimulationError(
                f"{task.name} releasing mutex {self.name} it does not hold "
                f"(owner: {self.owner.name if self.owner else None})")
        if self.waiters:
            self.owner = self.waiters.pop(0)
            self.acquisitions += 1
            return self.owner
        self.owner = None
        return None

    def __repr__(self):
        owner = self.owner.name if self.owner else None
        return f"Mutex({self.name!r}, owner={owner}, waiters={len(self.waiters)})"


class DeadlockDetector:
    """Wait-for graph over tasks."""

    def __init__(self):
        self._edges = {}  # waiting task -> (blocking task, reason)

    def wait(self, waiter, holder, reason):
        self._edges[waiter] = (holder, reason)

    def clear(self, waiter):
        self._edges.pop(waiter, None)

    def find_cycle(self):
        """Return the wait cycle as ``[(task, reason), ...]`` or None."""
        for start in self._edges:
            path = []
            seen = set()
            current = start
            while current in self._edges:
                holder, reason = self._edges[current]
                path.append((current, reason))
                if holder in seen or holder is start:
                    if holder is not start:
                        # Trim the path to the actual cycle.
                        names = [t for t, _ in path]
                        index = names.index(holder)
                        path = path[index:]
                    return path
                seen.add(current)
                current = holder
        return None

    def describe_cycle(self):
        cycle = self.find_cycle()
        if cycle is None:
            return None
        return " -> ".join(f"{task.name}[{reason}]" for task, reason in cycle)
