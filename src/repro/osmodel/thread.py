"""Kernel task model.

Mirrors the fields Algorithm 1 consults: a task knows whether it is a
*new release* (first dispatch) and which little cores its checker
threads should be hooked to (``checker_index``).  Checker threads are
ordinary tasks of kind ``CHECKER`` pinned to a little core — they
cannot migrate before re-execution completes (Sec. IV-B).
"""

import enum

from repro.common.errors import SimulationError


class TaskKind(enum.Enum):
    APPLICATION = "application"
    CHECKER = "checker"
    OTHER = "other"
    KERNEL = "kernel"


class TaskState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class Task:
    """One schedulable thread."""

    _NEXT_TID = 1

    def __init__(self, name, kind=TaskKind.OTHER, checker_index=(),
                 pinned_core=None, body=None):
        self.tid = Task._NEXT_TID
        Task._NEXT_TID += 1
        self.name = name
        self.kind = kind
        self.state = TaskState.READY
        self.new_release = True
        #: Little cores reserved for this task's checker threads
        #: (Algorithm 1, lines 10-13).
        self.checker_index = tuple(checker_index)
        #: Checker threads cannot migrate off their little core.
        self.pinned_core = pinned_core
        #: Saved context (opaque to the scheduler model).
        self.context = {"pc": 0}
        #: Optional behaviour callable used by scenario simulations.
        self.body = body
        self.dispatch_count = 0
        self.blocked_on = None

    @property
    def is_checker_thread(self):
        return self.kind is TaskKind.CHECKER

    def save_context(self, context):
        self.context = dict(context)

    def restore_context(self):
        if self.context is None:
            raise SimulationError(f"task {self.name}: no saved context")
        return dict(self.context)

    def block(self, resource):
        self.state = TaskState.BLOCKED
        self.blocked_on = resource

    def unblock(self):
        self.state = TaskState.READY
        self.blocked_on = None

    def __repr__(self):
        return (f"Task({self.name!r}, tid={self.tid}, {self.kind.value}, "
                f"{self.state.value})")
