"""Syscall layer for privileged MEEK operations.

``b.hook``, ``b.check`` and ``l.mode`` are Priv-1 instructions
(Table I): user code must enter the kernel to issue them, because they
can cause contention over little cores or erroneous memory accesses.
:class:`KernelInterface` is the thin syscall surface the checker-thread
runtime and the scheduler use; it enforces the privilege boundary the
ISA defines.
"""

from repro.common.errors import PrivilegeError
from repro.isa.meek import privilege_level


class KernelInterface:
    """Mediates MEEK-ISA access for user and kernel contexts."""

    def __init__(self, device):
        self.device = device
        self.syscalls = 0

    def _require_kernel(self, op, kernel_mode):
        if privilege_level(op) == 1 and not kernel_mode:
            raise PrivilegeError(
                f"{op} requires kernel mode; issue it via syscall")

    def b_check(self, enable, kernel_mode=False):
        self._require_kernel("b.check", kernel_mode)
        self.device.b_check(enable)

    def b_hook(self, big_core, little_core, kernel_mode=False):
        self._require_kernel("b.hook", kernel_mode)
        self.device.b_hook(big_core, little_core)

    def l_mode(self, little_core, mode, kernel_mode=False):
        self._require_kernel("l.mode", kernel_mode)
        self.device.l_mode(little_core, mode)

    # User-mode (Priv 0) operations need no mediation; they are listed
    # here for completeness of the programming model.
    def syscall(self, op, *args):
        """Enter the kernel and issue a privileged op on behalf of the
        caller (the OS validates the request first)."""
        self.syscalls += 1
        handler = {
            "b.check": self.b_check,
            "b.hook": self.b_hook,
            "l.mode": self.l_mode,
        }.get(op)
        if handler is None:
            raise PrivilegeError(f"unknown privileged operation {op!r}")
        return handler(*args, kernel_mode=True)
