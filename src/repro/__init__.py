"""repro — a cycle-level reproduction of MEEK (DAC 2025).

MEEK ("Make Each Error Count", Jiang, Liao, Ainsworth, You, Jones)
builds heterogeneous parallel error detection into a real OoO
superscalar SoC: a big core's commit stream is checkpointed and
replayed on small in-order cores that verify every segment.  This
package rebuilds the full system — ISA, cores, fabric, checkpointing,
OS integration, baselines, workloads and the complete evaluation — in
pure Python.

Entry points:

* :class:`repro.core.system.MeekSystem` — the full SoC; ``run()`` a
  program under checking.
* :func:`repro.core.system.run_vanilla` — the unmodified big core.
* :mod:`repro.workloads` — SPECint06/PARSEC-profile program generator.
* :mod:`repro.campaign` — parallel sharded campaign engine for
  experiment grids, sweeps and fault-injection campaigns.
* :mod:`repro.experiments` — regenerate each paper table/figure.
* ``python -m repro`` — command-line interface.

See README.md for a tour of the package and the campaign engine.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
