"""Fig. 8: slowdown vs number of little cores (PARSEC).

Paper: 2 cores — 54.9% geomean slowdown; 4 cores — 4.4%; 6 cores —
0.3% (every workload under 1%); the decline is superlinear in the core
count.
"""

from dataclasses import dataclass, field

from repro.analysis.report import format_table
from repro.analysis.stats import geomean
from repro.campaign import CampaignPoint
from repro.experiments.runner import (
    DEFAULT_DYNAMIC_INSTRUCTIONS,
    run_grid,
)
from repro.workloads.profiles import PARSEC_ORDER

DEFAULT_CORE_COUNTS = (2, 4, 6)


@dataclass
class Fig8Row:
    name: str
    slowdowns: dict = field(default_factory=dict)  # core count -> slowdown


def run(dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS,
        core_counts=DEFAULT_CORE_COUNTS, seed=0, workloads=None, jobs=None):
    if workloads is None:
        workloads = PARSEC_ORDER
    points = []
    for name in workloads:
        points.append(CampaignPoint(
            task="vanilla", workload=name,
            instructions=dynamic_instructions, seed=seed))
        for cores in core_counts:
            points.append(CampaignPoint(
                task="meek", workload=name,
                instructions=dynamic_instructions, seed=seed,
                params={"cores": cores}))
    metrics = run_grid("fig8", points, jobs=jobs)
    stride = 1 + len(core_counts)
    rows = []
    for w, name in enumerate(workloads):
        base = metrics[w * stride]["cycles"]
        row = Fig8Row(name=name)
        for c, cores in enumerate(core_counts):
            row.slowdowns[cores] = (
                metrics[w * stride + 1 + c]["cycles"] / base)
        rows.append(row)
    return rows


def geomeans(rows, core_counts=DEFAULT_CORE_COUNTS):
    return {cores: geomean(r.slowdowns[cores] for r in rows)
            for cores in core_counts}


def is_superlinear_decline(rows, core_counts=DEFAULT_CORE_COUNTS):
    """The paper's qualitative claim: overhead (slowdown - 1) drops by
    a growing factor as cores are added."""
    means = geomeans(rows, core_counts)
    overheads = [max(1e-9, means[c] - 1.0) for c in sorted(core_counts)]
    ratios = [overheads[i] / overheads[i + 1]
              for i in range(len(overheads) - 1)]
    return all(ratios[i + 1] >= ratios[i] * 0.5 for i in
               range(len(ratios) - 1)) and all(r > 1.0 for r in ratios)


def format_results(rows, core_counts=DEFAULT_CORE_COUNTS):
    table_rows = [[r.name] + [r.slowdowns[c] for c in core_counts]
                  for r in rows]
    means = geomeans(rows, core_counts)
    table_rows.append(["geomean"] + [means[c] for c in core_counts])
    return format_table(
        ["workload"] + [f"{c}-core" for c in core_counts],
        table_rows,
        title="Fig. 8 — slowdown vs little-core count (PARSEC)")


if __name__ == "__main__":
    print(format_results(run()))
