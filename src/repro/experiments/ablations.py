"""Ablations over MEEK's design parameters (Sec. V-D context).

Three sweeps over the design choices DESIGN.md calls out:

* **LSL capacity** — the 4 KB log (256 run-time records) balances
  segment length against checker memory: smaller logs close segments
  earlier, multiplying RCP traffic and DEU collecting stalls.
* **Checkpoint instruction timeout** — the 5000-instruction maximum
  bounds detection latency for compute-heavy code with little memory
  traffic.
* **DC-Buffer depth** — buffers must absorb an RCP's multi-flit status
  burst or the commit stage stalls even behind F2.
"""

from dataclasses import dataclass, replace

from repro.analysis.report import format_table
from repro.common.config import FabricConfig, LslConfig, default_meek_config
from repro.core.system import MeekSystem, run_vanilla
from repro.experiments.runner import DEFAULT_DYNAMIC_INSTRUCTIONS, build_workload

DEFAULT_WORKLOAD = "dedup"
LSL_SIZES_KB = (1, 2, 4, 8)
TIMEOUTS = (500, 2000, 5000, 20000)
BUFFER_DEPTHS = (2, 4, 16, 64)


@dataclass
class AblationRow:
    parameter: str
    value: object
    slowdown: float
    segments: int
    collecting_stalls: float
    forwarding_stalls: float


def _run(config, program, vanilla, parameter, value):
    result = MeekSystem(config).run(program)
    stats = result.controller.stats()
    return AblationRow(
        parameter=parameter,
        value=value,
        slowdown=result.cycles / vanilla.cycles,
        segments=stats["segments"],
        collecting_stalls=stats["stall_cycles"]["data_collecting"],
        forwarding_stalls=stats["stall_cycles"]["data_forwarding"],
    )


def sweep_lsl_size(workload=DEFAULT_WORKLOAD,
                   dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS,
                   sizes_kb=LSL_SIZES_KB, seed=0):
    """Vary the Load-Store Log capacity."""
    program = build_workload(workload, dynamic_instructions, seed)
    vanilla = run_vanilla(program)
    rows = []
    for size_kb in sizes_kb:
        base = default_meek_config()
        little = replace(base.little_core,
                         lsl=LslConfig(size_bytes=size_kb * 1024))
        config = replace(base, little_core=little)
        rows.append(_run(config, program, vanilla, "lsl_kb", size_kb))
    return rows


def sweep_timeout(workload="hmmer",
                  dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS,
                  timeouts=TIMEOUTS, seed=0):
    """Vary the checkpoint instruction timeout."""
    program = build_workload(workload, dynamic_instructions, seed)
    vanilla = run_vanilla(program)
    rows = []
    for timeout in timeouts:
        base = default_meek_config()
        little = replace(base.little_core,
                         lsl=replace(base.little_core.lsl,
                                     instruction_timeout=timeout))
        config = replace(base, little_core=little)
        rows.append(_run(config, program, vanilla, "timeout", timeout))
    return rows


def sweep_buffer_depth(workload=DEFAULT_WORKLOAD,
                       dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS,
                       depths=BUFFER_DEPTHS, seed=0):
    """Vary the DC-Buffer depth (both channels)."""
    program = build_workload(workload, dynamic_instructions, seed)
    vanilla = run_vanilla(program)
    rows = []
    for depth in depths:
        base = default_meek_config()
        fabric = FabricConfig(status_fifo_depth=depth,
                              runtime_fifo_depth=depth)
        config = replace(base, fabric=fabric)
        rows.append(_run(config, program, vanilla, "dc_depth", depth))
    return rows


def run(dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS, seed=0):
    """All three sweeps."""
    return (sweep_lsl_size(dynamic_instructions=dynamic_instructions,
                           seed=seed)
            + sweep_timeout(dynamic_instructions=dynamic_instructions,
                            seed=seed)
            + sweep_buffer_depth(dynamic_instructions=dynamic_instructions,
                                 seed=seed))


def format_results(rows):
    return format_table(
        ["parameter", "value", "slowdown", "segments", "collect", "forward"],
        [[r.parameter, r.value, r.slowdown, r.segments,
          r.collecting_stalls, r.forwarding_stalls] for r in rows],
        title="Ablations — LSL size / checkpoint timeout / DC-Buffer depth")


if __name__ == "__main__":
    print(format_results(run()))
