"""Ablations over MEEK's design parameters (Sec. V-D context).

Three sweeps over the design choices DESIGN.md calls out:

* **LSL capacity** — the 4 KB log (256 run-time records) balances
  segment length against checker memory: smaller logs close segments
  earlier, multiplying RCP traffic and DEU collecting stalls.
* **Checkpoint instruction timeout** — the 5000-instruction maximum
  bounds detection latency for compute-heavy code with little memory
  traffic.
* **DC-Buffer depth** — buffers must absorb an RCP's multi-flit status
  burst or the commit stage stalls even behind F2.
"""

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.campaign import CampaignPoint
from repro.experiments.runner import DEFAULT_DYNAMIC_INSTRUCTIONS, run_grid

DEFAULT_WORKLOAD = "dedup"
LSL_SIZES_KB = (1, 2, 4, 8)
TIMEOUTS = (500, 2000, 5000, 20000)
BUFFER_DEPTHS = (2, 4, 16, 64)


@dataclass
class AblationRow:
    parameter: str
    value: object
    slowdown: float
    segments: int
    collecting_stalls: float
    forwarding_stalls: float


def _sweep_points(workload, dynamic_instructions, seed, parameter, values):
    """One vanilla baseline point plus a meek point per swept value
    (``parameter`` doubles as the campaign-task config key)."""
    points = [CampaignPoint(task="vanilla", workload=workload,
                            instructions=dynamic_instructions, seed=seed)]
    points.extend(CampaignPoint(task="meek", workload=workload,
                                instructions=dynamic_instructions,
                                seed=seed, params={parameter: value})
                  for value in values)
    return points


def _sweep_rows(parameter, values, metrics):
    base = metrics[0]["cycles"]
    rows = []
    for value, meek in zip(values, metrics[1:]):
        rows.append(AblationRow(
            parameter=parameter,
            value=value,
            slowdown=meek["cycles"] / base,
            segments=meek["segments"],
            collecting_stalls=meek["stall_cycles"]["data_collecting"],
            forwarding_stalls=meek["stall_cycles"]["data_forwarding"],
        ))
    return rows


def sweep_lsl_size(workload=DEFAULT_WORKLOAD,
                   dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS,
                   sizes_kb=LSL_SIZES_KB, seed=0, jobs=None):
    """Vary the Load-Store Log capacity."""
    points = _sweep_points(workload, dynamic_instructions, seed,
                           "lsl_kb", sizes_kb)
    return _sweep_rows("lsl_kb", sizes_kb,
                       run_grid("ablation-lsl", points, jobs=jobs))


def sweep_timeout(workload="hmmer",
                  dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS,
                  timeouts=TIMEOUTS, seed=0, jobs=None):
    """Vary the checkpoint instruction timeout."""
    points = _sweep_points(workload, dynamic_instructions, seed,
                           "timeout", timeouts)
    return _sweep_rows("timeout", timeouts,
                       run_grid("ablation-timeout", points, jobs=jobs))


def sweep_buffer_depth(workload=DEFAULT_WORKLOAD,
                       dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS,
                       depths=BUFFER_DEPTHS, seed=0, jobs=None):
    """Vary the DC-Buffer depth (both channels)."""
    points = _sweep_points(workload, dynamic_instructions, seed,
                           "dc_depth", depths)
    return _sweep_rows("dc_depth", depths,
                       run_grid("ablation-dc", points, jobs=jobs))


def run(dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS, seed=0,
        jobs=None):
    """All three sweeps, submitted as one grid so shards stay busy."""
    sweeps = (
        ("lsl_kb", DEFAULT_WORKLOAD, LSL_SIZES_KB),
        ("timeout", "hmmer", TIMEOUTS),
        ("dc_depth", DEFAULT_WORKLOAD, BUFFER_DEPTHS),
    )
    points, slices = [], []
    for parameter, workload, values in sweeps:
        start = len(points)
        points.extend(_sweep_points(workload, dynamic_instructions, seed,
                                    parameter, values))
        slices.append((parameter, values, start, len(points)))
    metrics = run_grid("ablations", points, jobs=jobs)
    rows = []
    for parameter, values, start, stop in slices:
        rows.extend(_sweep_rows(parameter, values, metrics[start:stop]))
    return rows


def format_results(rows):
    return format_table(
        ["parameter", "value", "slowdown", "segments", "collect", "forward"],
        [[r.parameter, r.value, r.slowdown, r.segments,
          r.collecting_stalls, r.forwarding_stalls] for r in rows],
        title="Ablations — LSL size / checkpoint timeout / DC-Buffer depth")


if __name__ == "__main__":
    print(format_results(run()))
