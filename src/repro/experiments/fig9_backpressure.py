"""Fig. 9: backpressure decomposition — AXI-Interconnect vs F2.

The paper's first implementation used a full-featured AXI interconnect
and measured a 16.7% geomean overhead on PARSEC with 4 little cores —
the 128-bit single-packet-per-cycle bus in the slow clock domain is the
system bottleneck.  Replacing it with F2 (256-bit, two packets/cycle,
multicast) cuts data collection + forwarding to under 5% and shifts
MEEK to being computation-bound (checker-limited).

The decomposition splits each configuration's slowdown into the three
commit-gating sources the controller tracks: data collecting (DEU PRF
reads at RCPs), data forwarding (DC-Buffer/fabric backpressure), and
little-core availability.
"""

from dataclasses import dataclass, field

from repro.analysis.report import format_table
from repro.analysis.stats import geomean
from repro.campaign import CampaignPoint
from repro.core.controller import StallReason
from repro.experiments.runner import (
    DEFAULT_DYNAMIC_INSTRUCTIONS,
    run_grid,
)
from repro.workloads.profiles import PARSEC_ORDER

FABRICS = ("f2", "axi")


@dataclass
class Fig9Row:
    name: str
    fabric: str
    slowdown: float
    collecting_fraction: float
    forwarding_fraction: float
    little_core_fraction: float


def run(dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS, seed=0,
        workloads=None, fabrics=FABRICS, jobs=None):
    if workloads is None:
        workloads = PARSEC_ORDER
    points = []
    for name in workloads:
        points.append(CampaignPoint(
            task="vanilla", workload=name,
            instructions=dynamic_instructions, seed=seed))
        for fabric in fabrics:
            points.append(CampaignPoint(
                task="meek", workload=name,
                instructions=dynamic_instructions, seed=seed,
                params={"fabric": fabric}))
    metrics = run_grid("fig9", points, jobs=jobs)
    stride = 1 + len(fabrics)
    rows = []
    for w, name in enumerate(workloads):
        base = metrics[w * stride]["cycles"]
        for f, fabric in enumerate(fabrics):
            meek = metrics[w * stride + 1 + f]
            stalls = meek["stall_cycles"]
            rows.append(Fig9Row(
                name=name,
                fabric=fabric,
                slowdown=meek["cycles"] / base,
                collecting_fraction=(
                    stalls[StallReason.COLLECTING.value] / base),
                forwarding_fraction=(
                    stalls[StallReason.FORWARDING.value] / base),
                little_core_fraction=(
                    stalls[StallReason.LITTLE_CORE.value] / base),
            ))
    return rows


def geomeans(rows, fabrics=FABRICS):
    return {fabric: geomean(r.slowdown for r in rows if r.fabric == fabric)
            for fabric in fabrics}


def forwarding_overhead(rows, fabric):
    """Geomean of (1 + collection/forwarding stall fraction) - 1: the
    paper's "data collection and forwarding" overhead component."""
    stalls = [1.0 + r.collecting_fraction + r.forwarding_fraction
              for r in rows if r.fabric == fabric]
    return geomean(stalls) - 1.0


def format_results(rows):
    table_rows = [[r.name, r.fabric, r.slowdown, r.collecting_fraction,
                   r.forwarding_fraction, r.little_core_fraction]
                  for r in rows]
    for fabric, value in geomeans(rows).items():
        table_rows.append([f"geomean({fabric})", fabric, value,
                           "", "", ""])
    return format_table(
        ["workload", "fabric", "slowdown", "collect", "forward",
         "little-core"],
        table_rows,
        title="Fig. 9 — backpressure decomposition (4 little cores)")


if __name__ == "__main__":
    print(format_results(run()))
