"""Fig. 9: backpressure decomposition — AXI-Interconnect vs F2.

The paper's first implementation used a full-featured AXI interconnect
and measured a 16.7% geomean overhead on PARSEC with 4 little cores —
the 128-bit single-packet-per-cycle bus in the slow clock domain is the
system bottleneck.  Replacing it with F2 (256-bit, two packets/cycle,
multicast) cuts data collection + forwarding to under 5% and shifts
MEEK to being computation-bound (checker-limited).

The decomposition splits each configuration's slowdown into the three
commit-gating sources the controller tracks: data collecting (DEU PRF
reads at RCPs), data forwarding (DC-Buffer/fabric backpressure), and
little-core availability.
"""

from dataclasses import dataclass, field

from repro.analysis.report import format_table
from repro.analysis.stats import geomean
from repro.core.controller import StallReason
from repro.experiments.runner import (
    DEFAULT_DYNAMIC_INSTRUCTIONS,
    build_workload,
    run_baseline,
    run_meek,
)
from repro.workloads.profiles import PARSEC_ORDER

FABRICS = ("f2", "axi")


@dataclass
class Fig9Row:
    name: str
    fabric: str
    slowdown: float
    collecting_fraction: float
    forwarding_fraction: float
    little_core_fraction: float


def run(dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS, seed=0,
        workloads=None, fabrics=FABRICS):
    if workloads is None:
        workloads = PARSEC_ORDER
    rows = []
    for name in workloads:
        program = build_workload(name, dynamic_instructions, seed)
        vanilla = run_baseline(program)
        for fabric in fabrics:
            meek = run_meek(program, fabric_kind=fabric)
            base = vanilla.cycles
            rows.append(Fig9Row(
                name=name,
                fabric=fabric,
                slowdown=meek.cycles / base,
                collecting_fraction=(
                    meek.stall_cycles(StallReason.COLLECTING) / base),
                forwarding_fraction=(
                    meek.stall_cycles(StallReason.FORWARDING) / base),
                little_core_fraction=(
                    meek.stall_cycles(StallReason.LITTLE_CORE) / base),
            ))
    return rows


def geomeans(rows, fabrics=FABRICS):
    return {fabric: geomean(r.slowdown for r in rows if r.fabric == fabric)
            for fabric in fabrics}


def forwarding_overhead(rows, fabric):
    """Geomean of (1 + collection/forwarding stall fraction) - 1: the
    paper's "data collection and forwarding" overhead component."""
    stalls = [1.0 + r.collecting_fraction + r.forwarding_fraction
              for r in rows if r.fabric == fabric]
    return geomean(stalls) - 1.0


def format_results(rows):
    table_rows = [[r.name, r.fabric, r.slowdown, r.collecting_fraction,
                   r.forwarding_fraction, r.little_core_fraction]
                  for r in rows]
    for fabric, value in geomeans(rows).items():
        table_rows.append([f"geomean({fabric})", fabric, value,
                           "", "", ""])
    return format_table(
        ["workload", "fabric", "slowdown", "collect", "forward",
         "little-core"],
        table_rows,
        title="Fig. 9 — backpressure decomposition (4 little cores)")


if __name__ == "__main__":
    print(format_results(run()))
