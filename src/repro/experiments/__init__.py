"""Experiment drivers: one module per table/figure of the paper.

Each module exposes ``run(...)`` returning structured rows and a
``format_results(...)`` that renders the same table/series the paper
reports.  The benchmark harness under ``benchmarks/`` wraps these with
pytest-benchmark; EXPERIMENTS.md records paper-vs-measured for each.
"""

from repro.experiments import (
    ablations,
    fig6_performance,
    fig7_latency,
    fig8_scalability,
    fig9_backpressure,
    fig10_perf_area,
    tab3_area,
)
from repro.experiments.runner import (
    DEFAULT_DYNAMIC_INSTRUCTIONS,
    NZDC_COMPILE_FAILURES,
    build_workload,
)

__all__ = [
    "DEFAULT_DYNAMIC_INSTRUCTIONS",
    "NZDC_COMPILE_FAILURES",
    "ablations",
    "build_workload",
    "fig10_perf_area",
    "fig6_performance",
    "fig7_latency",
    "fig8_scalability",
    "fig9_backpressure",
    "tab3_area",
]
