"""Table III: hardware overhead of MEEK vs the DSN'18 estimate.

Paper figures at TSMC 28nm: BOOM 2.811 mm²; optimized Rocket
0.092 mm² each (excluding L1 D$); DEU 0.071 mm²; F2 0.051 mm²
(together the 0.122 mm² big-core wrapper, 4.3% of BOOM); per-little
wrapper 0.059 mm²; total overhead with four little cores 0.726 mm² =
25.8%.  The DSN'18 comparison column: a Cortex-A57 (3.905 mm² scaled
to 28nm) with twelve 0.078 mm² Rockets, 24% claimed overhead.
"""

from repro.analysis.area import (
    DSN18_COMPARISON,
    boom_area_mm2,
    lockstep_scale_factor,
    meek_area_report,
    rocket_area_mm2,
)
from repro.analysis.report import format_table
from repro.common.config import (
    default_meek_config,
    default_rocket_config,
)


def compute_report(meek_config=None):
    """Compute the Table III rows from the area model (direct path;
    also the body of the ``tab3`` campaign task)."""
    config = meek_config if meek_config is not None else default_meek_config()
    report = meek_area_report(config)
    report["default_rocket_mm2"] = rocket_area_mm2(default_rocket_config())
    report["lockstep_scale_factor"] = lockstep_scale_factor(config)
    report["lockstep_core_mm2"] = boom_area_mm2(
        config.big_core.scaled(report["lockstep_scale_factor"]))
    report["dsn18"] = dict(DSN18_COMPARISON)
    return report


def run(meek_config=None, jobs=None):
    """Regenerate Table III.

    The default configuration routes through the campaign engine as a
    single analysis point (so ``figure tab3`` shares the engine path);
    an explicit ``meek_config`` is computed directly, since configs are
    richer than campaign-point scalars.
    """
    if meek_config is not None:
        return compute_report(meek_config)
    from repro.campaign import CampaignPoint
    from repro.experiments.runner import run_grid
    [report] = run_grid("tab3", [CampaignPoint(task="tab3")], jobs=jobs)
    return report


def format_results(report):
    dsn18 = report["dsn18"]
    rows = [
        ["Big core", "BOOM", 1, report["big_core_mm2"],
         dsn18["big_core"], 1, dsn18["big_area_mm2_at_28nm"]],
        ["Little core", "Rocket(opt)", report["little_count"],
         report["little_core_mm2"], dsn18["little_core"],
         dsn18["little_count"], dsn18["little_area_mm2_at_28nm"]],
        ["Wrapper (big)", "DEU+F2", 1, report["big_wrapper_mm2"],
         "-", "-", "-"],
        ["Wrapper (little)", "LSL+MSU", report["little_count"],
         report["little_wrapper_mm2"], "-", "-", "-"],
        ["Overhead", "", "", f"{report['overhead_fraction']:.1%}",
         "", "", f"{dsn18['overhead']:.0%}"],
    ]
    return format_table(
        ["component", "impl", "count", "mm2 (ours)", "impl (DSN'18)",
         "count'", "mm2 @28nm"],
        rows,
        title="Table III — hardware overhead (28nm)")


if __name__ == "__main__":
    print(format_results(run()))
