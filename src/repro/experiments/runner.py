"""Shared experiment machinery."""

from repro.common.config import default_meek_config
from repro.core.system import MeekSystem, run_vanilla
from repro.workloads import generate_program, get_profile

#: Committed instructions per experiment run.  The paper runs full
#: SPEC/PARSEC inputs on FPGA; the cycle-level model uses statistically
#: stable synthetic slices instead (every run is deterministic in the
#: seed, so results are exactly reproducible).
DEFAULT_DYNAMIC_INSTRUCTIONS = 20_000

#: Footnote 6 of the paper: "For Nzdc, compilation fails in gcc,
#: omnetpp, xalancbmk, and freqmine."  We reproduce the evaluation
#: protocol, including which workloads the baseline covers.
NZDC_COMPILE_FAILURES = frozenset({"gcc", "omnetpp", "xalancbmk",
                                   "freqmine"})


def build_workload(name, dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS,
                   seed=0):
    """Generate the synthetic program for benchmark ``name``."""
    return generate_program(get_profile(name),
                            dynamic_instructions=dynamic_instructions,
                            seed=seed)


def run_meek(program, num_little_cores=4, fabric_kind="f2", injector=None,
             config=None):
    """One MEEK execution with a fresh system."""
    if config is None:
        config = default_meek_config(num_little_cores=num_little_cores,
                                     fabric_kind=fabric_kind)
    system = MeekSystem(config, injector=injector)
    return system.run(program)


def run_baseline(program):
    """One vanilla big-core execution (the slowdown denominator)."""
    return run_vanilla(program)
