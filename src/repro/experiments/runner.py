"""Shared experiment machinery.

Every figure/table driver expresses its measurements as a grid of
campaign points and submits them through :func:`run_grid`, so one
``jobs=N`` argument (or ``$REPRO_JOBS``) shards any experiment across
worker processes with bit-identical results.
"""

from repro.workloads import generate_program, get_profile

#: Committed instructions per experiment run.  The paper runs full
#: SPEC/PARSEC inputs on FPGA; the cycle-level model uses statistically
#: stable synthetic slices instead (every run is deterministic in the
#: seed, so results are exactly reproducible).
DEFAULT_DYNAMIC_INSTRUCTIONS = 20_000

#: Footnote 6 of the paper: "For Nzdc, compilation fails in gcc,
#: omnetpp, xalancbmk, and freqmine."  We reproduce the evaluation
#: protocol, including which workloads the baseline covers.
NZDC_COMPILE_FAILURES = frozenset({"gcc", "omnetpp", "xalancbmk",
                                   "freqmine"})


def build_workload(name, dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS,
                   seed=0):
    """Generate the synthetic program for benchmark ``name``."""
    return generate_program(get_profile(name),
                            dynamic_instructions=dynamic_instructions,
                            seed=seed)


def run_grid(name, points, jobs=None, progress=None, live=None,
             batch=None):
    """Execute experiment ``points`` through the campaign engine.

    Returns the per-point metrics dicts in point order.  Identical
    points (e.g. the same vanilla baseline shared by two sweeps) are
    submitted once and their metrics fanned back out.  Experiment
    grids must evaluate completely — a failed point aborts with its
    captured error rather than producing a figure with holes.
    ``live`` threads a :class:`repro.obs.live.LiveStatus` through to
    the executor so long figure sweeps are watchable like any other
    campaign.  ``batch`` selects the lockstep batch width for
    compatible inject points (``None`` = auto).
    """
    from repro.campaign import CampaignSpec
    from repro.obs.events import event_log
    from repro.perf.service import get_service

    points = list(points)
    unique, index_of = [], {}
    for point in points:
        pid = point.point_id
        if pid not in index_of:
            index_of[pid] = len(unique)
            unique.append(point)
    spec = CampaignSpec(name=name, points=unique)
    # Through the warm execution service: drivers that submit several
    # grids (and figure sweeps run back to back) stream through one
    # persistent, pre-warmed worker pool instead of forking per grid.
    with event_log().span("grid", name=name, points=len(points),
                          unique=len(unique)):
        result = get_service().run_campaign(spec, jobs=jobs,
                                            progress=progress, live=live,
                                            batch=batch)
    failed = result.failed
    if failed:
        first = failed[0]
        raise RuntimeError(
            f"{name}: {len(failed)}/{len(spec.points)} points failed; "
            f"first failure at {first.point_id}: {first.error}")
    metrics = result.metrics()
    return [metrics[index_of[p.point_id]] for p in points]
