"""Fig. 10: little-core performance/area — optimized vs default Rocket.

Sec. III-C / V-D: instead of scaling the little-core count, the paper
widens the bottlenecked components (8-unroll divider, 3-stage pipelined
FPU).  Four optimized cores match six default cores on the verification
job; normalized by area (the optimized core is 0.092 mm² vs 0.078 mm²)
the performance/area improves by 15.2% geomean on PARSEC.

Performance here is the little core's throughput running each
workload's instruction stream (the verification job is re-executing
exactly that stream), measured in instructions per little-core cycle.
"""

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.analysis.stats import geomean
from repro.campaign import CampaignPoint
from repro.experiments.runner import (
    DEFAULT_DYNAMIC_INSTRUCTIONS,
    run_grid,
)
from repro.workloads.profiles import PARSEC_ORDER


@dataclass
class Fig10Row:
    name: str
    optimized_ipc: float
    default_ipc: float
    optimized_perf_area: float
    default_perf_area: float

    @property
    def improvement(self):
        """Relative perf/area gain of the optimized core."""
        return self.optimized_perf_area / self.default_perf_area - 1.0


def run(dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS, seed=0,
        workloads=None, jobs=None):
    if workloads is None:
        workloads = PARSEC_ORDER
    # A deployed checker core is core + wrapper (LSL + MSU); the
    # little_ipc task includes the wrapper in its area denominator for
    # both configurations.
    points = [
        CampaignPoint(task="little_ipc", workload=name,
                      instructions=dynamic_instructions, seed=seed,
                      params={"core": kind})
        for name in workloads
        for kind in ("optimized", "default")
    ]
    metrics = run_grid("fig10", points, jobs=jobs)
    rows = []
    for w, name in enumerate(workloads):
        opt, dfl = metrics[2 * w], metrics[2 * w + 1]
        rows.append(Fig10Row(
            name=name,
            optimized_ipc=opt["ipc"],
            default_ipc=dfl["ipc"],
            optimized_perf_area=opt["perf_per_mm2"],
            default_perf_area=dfl["perf_per_mm2"],
        ))
    return rows


def geomean_improvement(rows):
    return geomean(1.0 + r.improvement for r in rows) - 1.0


def format_results(rows):
    table_rows = [[r.name, r.optimized_ipc, r.default_ipc,
                   r.optimized_perf_area, r.default_perf_area,
                   f"{r.improvement:+.1%}"] for r in rows]
    table_rows.append(["geomean", "", "", "", "",
                       f"{geomean_improvement(rows):+.1%}"])
    return format_table(
        ["workload", "opt IPC", "def IPC", "opt perf/mm2", "def perf/mm2",
         "improvement"],
        table_rows,
        title="Fig. 10 — little-core performance/area (PARSEC)")


if __name__ == "__main__":
    print(format_results(run()))
