"""Fig. 10: little-core performance/area — optimized vs default Rocket.

Sec. III-C / V-D: instead of scaling the little-core count, the paper
widens the bottlenecked components (8-unroll divider, 3-stage pipelined
FPU).  Four optimized cores match six default cores on the verification
job; normalized by area (the optimized core is 0.092 mm² vs 0.078 mm²)
the performance/area improves by 15.2% geomean on PARSEC.

Performance here is the little core's throughput running each
workload's instruction stream (the verification job is re-executing
exactly that stream), measured in instructions per little-core cycle.
"""

from dataclasses import dataclass

from repro.analysis.area import LITTLE_WRAPPER_AREA_MM2, rocket_area_mm2
from repro.analysis.report import format_table
from repro.analysis.stats import geomean
from repro.common.config import default_rocket_config, optimized_rocket_config
from repro.experiments.runner import (
    DEFAULT_DYNAMIC_INSTRUCTIONS,
    build_workload,
)
from repro.littlecore.core import LittleCore
from repro.workloads.profiles import PARSEC_ORDER


@dataclass
class Fig10Row:
    name: str
    optimized_ipc: float
    default_ipc: float
    optimized_perf_area: float
    default_perf_area: float

    @property
    def improvement(self):
        """Relative perf/area gain of the optimized core."""
        return self.optimized_perf_area / self.default_perf_area - 1.0


def _little_ipc(program, config, max_instructions):
    core = LittleCore(config, clock_ratio=1)
    result = core.run(program, max_instructions=max_instructions)
    return result.ipc


def run(dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS, seed=0,
        workloads=None):
    if workloads is None:
        workloads = PARSEC_ORDER
    optimized = optimized_rocket_config()
    default = default_rocket_config()
    # A deployed checker core is core + wrapper (LSL + MSU), so the
    # area denominator includes the wrapper for both configurations.
    optimized_area = rocket_area_mm2(optimized) + LITTLE_WRAPPER_AREA_MM2
    default_area = rocket_area_mm2(default) + LITTLE_WRAPPER_AREA_MM2
    rows = []
    for name in workloads:
        program = build_workload(name, dynamic_instructions, seed)
        limit = dynamic_instructions
        opt_ipc = _little_ipc(program, optimized, limit)
        def_ipc = _little_ipc(program, default, limit)
        rows.append(Fig10Row(
            name=name,
            optimized_ipc=opt_ipc,
            default_ipc=def_ipc,
            optimized_perf_area=opt_ipc / optimized_area,
            default_perf_area=def_ipc / default_area,
        ))
    return rows


def geomean_improvement(rows):
    return geomean(1.0 + r.improvement for r in rows) - 1.0


def format_results(rows):
    table_rows = [[r.name, r.optimized_ipc, r.default_ipc,
                   r.optimized_perf_area, r.default_perf_area,
                   f"{r.improvement:+.1%}"] for r in rows]
    table_rows.append(["geomean", "", "", "", "",
                       f"{geomean_improvement(rows):+.1%}"])
    return format_table(
        ["workload", "opt IPC", "def IPC", "opt perf/mm2", "def perf/mm2",
         "improvement"],
        table_rows,
        title="Fig. 10 — little-core performance/area (PARSEC)")


if __name__ == "__main__":
    print(format_results(run()))
