"""Fig. 6: slowdown of MEEK vs EA-LockStep vs Nzdc on SPEC06 + PARSEC.

Paper headline numbers (geomean slowdown over the vanilla big core):

=============  ======  ===========  =====
suite          MEEK    EA-LockStep  Nzdc
=============  ======  ===========  =====
SPECint 2006   1.4%    48.7%        94.2%
PARSEC 3.0     4.4%    31.2%        60.2%
=============  ======  ===========  =====

plus the swaptions outlier at 22% for MEEK.  Nzdc has no bar for gcc,
omnetpp, xalancbmk and freqmine (compilation failures, footnote 6).
"""

from dataclasses import dataclass
from typing import Optional

from repro.analysis.report import format_table
from repro.analysis.stats import geomean
from repro.campaign import CampaignPoint
from repro.experiments.runner import (
    DEFAULT_DYNAMIC_INSTRUCTIONS,
    NZDC_COMPILE_FAILURES,
    run_grid,
)
from repro.workloads.profiles import PARSEC_ORDER, SPEC_ORDER, get_profile


@dataclass
class Fig6Row:
    name: str
    suite: str
    meek: float
    lockstep: float
    nzdc: Optional[float]  # None when the baseline fails to compile


def run(dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS, seed=0,
        workloads=None, jobs=None):
    """Regenerate the Fig. 6 slowdown rows (via the campaign engine)."""
    if workloads is None:
        workloads = SPEC_ORDER + PARSEC_ORDER
    points, layout = [], []
    for name in workloads:
        tasks = ["vanilla", "meek", "lockstep"]
        if name not in NZDC_COMPILE_FAILURES:
            tasks.append("nzdc")
        indices = {}
        for task in tasks:
            indices[task] = len(points)
            points.append(CampaignPoint(
                task=task, workload=name,
                instructions=dynamic_instructions, seed=seed))
        layout.append((name, indices))
    metrics = run_grid("fig6", points, jobs=jobs)
    rows = []
    for name, indices in layout:
        base = metrics[indices["vanilla"]]["cycles"]
        nzdc_slowdown = None
        if "nzdc" in indices:
            nzdc_slowdown = metrics[indices["nzdc"]]["cycles"] / base
        rows.append(Fig6Row(
            name=name,
            suite=get_profile(name).suite,
            meek=metrics[indices["meek"]]["cycles"] / base,
            lockstep=metrics[indices["lockstep"]]["cycles"] / base,
            nzdc=nzdc_slowdown,
        ))
    return rows


def geomeans(rows):
    """Per-suite geomean slowdowns, Nzdc over its compiling subset."""
    result = {}
    for suite in ("spec06", "parsec"):
        suite_rows = [r for r in rows if r.suite == suite]
        if not suite_rows:
            continue
        result[suite] = {
            "meek": geomean(r.meek for r in suite_rows),
            "lockstep": geomean(r.lockstep for r in suite_rows),
            "nzdc": geomean(r.nzdc for r in suite_rows
                            if r.nzdc is not None),
        }
    return result


def format_results(rows):
    """Render the Fig. 6 table (plus geomean rows)."""
    table_rows = []
    for row in rows:
        table_rows.append([row.name, row.suite, row.meek, row.lockstep,
                           row.nzdc if row.nzdc is not None else "fail"])
    for suite, values in geomeans(rows).items():
        table_rows.append([f"geomean({suite})", suite, values["meek"],
                           values["lockstep"], values["nzdc"]])
    return format_table(
        ["benchmark", "suite", "MEEK", "EA-LockStep", "Nzdc"],
        table_rows,
        title="Fig. 6 — slowdown vs vanilla big core")


if __name__ == "__main__":
    print(format_results(run()))
