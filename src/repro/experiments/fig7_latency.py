"""Fig. 7: detection-latency distribution under fault injection.

The paper injects 5,000–10,000 single-bit faults per PARSEC workload
into the data forwarded through F2 (memory-operation addresses/data and
architectural register data), without disturbing the big core, and
plots the density of injection-to-detection latencies.  Headline
claims: average below 1 µs, worst case 2.7 µs (ferret), and 3 µs
covering > 99.9% of the > 100,000 total samples.

The model reproduces the same campaign at reduced sample counts (each
run is a fresh system with a differently-seeded injector; detection
happens through the genuine log/ERCP comparison machinery).
"""

from dataclasses import dataclass, field

from repro.analysis.report import format_table, render_histogram
from repro.analysis.stats import coverage_within, density_histogram, mean
from repro.campaign import CampaignPoint
from repro.experiments.runner import (
    DEFAULT_DYNAMIC_INSTRUCTIONS,
    run_grid,
)
from repro.workloads.profiles import PARSEC_ORDER

#: Fig. 7's x-axis runs to 3000 ns in 200 ns bins.
BIN_WIDTH_NS = 200.0
MAX_LATENCY_NS = 3000.0


@dataclass
class Fig7Row:
    name: str
    injections: int
    detected: int
    latencies_ns: list = field(default_factory=list)

    @property
    def mean_ns(self):
        return mean(self.latencies_ns) if self.latencies_ns else 0.0

    @property
    def worst_ns(self):
        return max(self.latencies_ns) if self.latencies_ns else 0.0

    @property
    def detection_rate(self):
        if not self.injections:
            return 0.0
        return self.detected / self.injections


def run(dynamic_instructions=DEFAULT_DYNAMIC_INSTRUCTIONS,
        runs_per_workload=3, injection_rate=0.008, seed=0, workloads=None,
        jobs=None, fault_model=None, fault_targets=None, batch=None):
    """Run the fault-injection campaign; returns per-workload rows.

    Every (workload, trial) cell is an independent campaign point with
    its own injector stream (the historical ``{seed}/{name}/{trial}``
    key), so the grid shards freely across workers.  ``fault_model``/
    ``fault_targets`` sweep the same figure under a non-default fault
    model (``burst:width=3``, ``stuckat:value=0``, ...); the defaults
    keep the paper's single-bit mix and the historical point identity.
    ``batch`` selects the lockstep batch width (``None`` = auto);
    the rows are bit-identical at any width.
    """
    if workloads is None:
        workloads = PARSEC_ORDER
    fault_params = {}
    if fault_model is not None:
        fault_params["fault_model"] = fault_model
    if fault_targets is not None:
        fault_params["fault_targets"] = fault_targets
    points = [
        CampaignPoint(task="inject", workload=name,
                      instructions=dynamic_instructions, seed=seed,
                      params={"rate": injection_rate, "trial": trial,
                              **fault_params,
                              "rng_key": f"{seed}/{name}/{trial}"})
        for name in workloads
        for trial in range(runs_per_workload)
    ]
    metrics = run_grid("fig7", points, jobs=jobs, batch=batch)
    rows = []
    for w, name in enumerate(workloads):
        row = Fig7Row(name=name, injections=0, detected=0)
        for trial in range(runs_per_workload):
            m = metrics[w * runs_per_workload + trial]
            row.injections += m["injections"]
            row.detected += m["detected"]
            row.latencies_ns.extend(m["latencies_ns"])
        rows.append(row)
    return rows


def aggregate(rows):
    """The cross-workload Sec. V-B claims."""
    all_latencies = [lat for row in rows for lat in row.latencies_ns]
    injections = sum(row.injections for row in rows)
    detected = sum(row.detected for row in rows)
    return {
        "total_injections": injections,
        "total_detected": detected,
        "detection_rate": detected / injections if injections else 0.0,
        "mean_ns": mean(all_latencies) if all_latencies else 0.0,
        "worst_ns": max(all_latencies) if all_latencies else 0.0,
        "coverage_within_3us": coverage_within(all_latencies,
                                               MAX_LATENCY_NS),
    }


def histogram(rows, bin_width=BIN_WIDTH_NS, max_value=MAX_LATENCY_NS):
    """The Fig. 7 density bins over all workloads."""
    all_latencies = [lat for row in rows for lat in row.latencies_ns]
    return density_histogram(all_latencies, bin_width, max_value=max_value)


def format_results(rows):
    table = format_table(
        ["workload", "injections", "detected", "mean(ns)", "worst(ns)"],
        [[r.name, r.injections, r.detected, r.mean_ns, r.worst_ns]
         for r in rows],
        title="Fig. 7 — detection latency (4 little cores)",
        float_format="{:.0f}")
    agg = aggregate(rows)
    summary = (f"\naggregate: {agg['total_injections']} injections, "
               f"{agg['detection_rate']:.1%} detected, "
               f"mean {agg['mean_ns']:.0f} ns, "
               f"worst {agg['worst_ns']:.0f} ns, "
               f"<=3us coverage {agg['coverage_within_3us']:.3%}\n")
    return table + summary + "\n" + render_histogram(histogram(rows))


if __name__ == "__main__":
    print(format_results(run()))
