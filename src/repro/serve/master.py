"""The ``repro serve`` master: one warm fleet, many clients.

A :class:`Master` owns the process-wide
:class:`~repro.perf.service.ExecutionService` — warm stepper caches
and the persistent, pre-forked
:class:`~repro.campaign.executor.WorkerPool` — and serves it to any
number of thin clients over a local Unix-domain socket speaking the
line-JSON RPC of :mod:`repro.serve.protocol`.  Submitted campaigns
flow through a persistent priority queue
(:class:`~repro.serve.scheduler.Scheduler`): one run executes at a
time over the shared shards, results stream to subscribed clients as
each point lands, and everything a client could ask about — queue
contents, live status, run outcomes — is answered from the scheduler
and the run's :class:`~repro.obs.live.LiveStatus`.

Failure semantics (each backed by a test in ``tests/test_serve.py``):

* **Client death** never touches a run: a subscriber whose socket
  breaks is dropped from the broadcast list; the campaign keeps
  executing and its rows keep landing in the store.
* **Worker death** is the pool's existing partial-shard-death story:
  the survivors drain, the lost chunk's points fail as
  ``WorkerDied``, the run finishes with those failures on record, and
  the next run gets a rebuilt pool.
* **Master death** loses nothing durable: run records and result rows
  are on disk before clients hear about them, so a restarted master
  requeues interrupted runs and resumes them from their own stores —
  same run id, already-completed points never re-run.
* **Malformed input** gets a structured error response; the
  connection (and the master) survive anything that arrives on the
  socket.

Cancel, pause, and graceful shutdown all ride the executor's
``abort`` hook: the campaign stops at the next point boundary, the
partial store stays, and ``requeue`` (or restart recovery) finishes
the remainder bit-identically — per-point results are pure functions
of point identity, so it cannot matter how many masters a run passed
through.
"""

import json
import os
import socket
import threading
import time

from repro.campaign.executor import CampaignAborted
from repro.campaign.spec import CampaignSpec
from repro.common.errors import ConfigError
from repro.obs.events import event_log
from repro.obs.live import LiveStatus, status_path_for
from repro.serve import protocol, scheduler as sched
from repro.serve.protocol import ProtocolError

__all__ = ["Master", "contact_path", "read_contact"]

#: Name of the contact file a live master writes into its state dir.
CONTACT_NAME = "serve.json"
#: Name of the master's socket inside the state dir (default).
SOCKET_NAME = "serve.sock"


def contact_path(state_dir):
    return os.path.join(state_dir, CONTACT_NAME)


def read_contact(state_dir):
    """The contact file's payload, or ``None`` if absent/unreadable."""
    try:
        with open(contact_path(state_dir), "r",
                  encoding="utf-8") as handle:
            contact = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(contact, dict) or "socket" not in contact:
        return None
    return contact


class _Client:
    """One connected client: its socket plus a write lock (responses
    and broadcast events come from different threads)."""

    def __init__(self, conn, peer):
        self.conn = conn
        self.peer = peer
        self.send_lock = threading.Lock()

    def send(self, message):
        data = protocol.encode(message)
        with self.send_lock:
            self.conn.sendall(data)


class Master:
    """The long-lived campaign master (see module docstring).

    ``service`` defaults to the process singleton; tests inject a
    fresh :class:`~repro.perf.service.ExecutionService` so a master
    torn down mid-test cannot poison unrelated tests' pools.
    """

    def __init__(self, state_dir=None, socket_path=None, jobs=None,
                 service=None, runners=None, lease_timeout_s=60.0):
        self.state_dir = state_dir or sched.default_state_dir()
        self.socket_path = socket_path or os.path.join(self.state_dir,
                                                       SOCKET_NAME)
        self.jobs = jobs
        if service is None:
            from repro.perf.service import get_service
            service = get_service()
        self.service = service
        # Remote runner support: the hub always exists (runners may
        # register over this Unix socket too); the TCP listener only
        # binds when `runners` names a "[HOST:]PORT".
        from repro.campaign.remote import RunnerHub
        self.hub = RunnerHub()
        self.runners_address = runners
        self.lease_timeout_s = lease_timeout_s
        self.listener = None
        self.scheduler = None
        self._sock = None
        self._shutdown = threading.Event()
        self._threads = []
        self._clients = []
        self._clients_lock = threading.Lock()
        # Guards the subscriber table *and* orders submit-vs-broadcast:
        # a submit registers its subscription under this lock before
        # the executor can announce the run, so streams never miss the
        # first events.
        self._sub_lock = threading.Lock()
        self._subs = {}   # rid -> [_Client]
        self._live = {}   # rid -> LiveStatus of the executing run
        self._started = None

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Bind the socket, recover interrupted runs, start serving."""
        if not hasattr(socket, "AF_UNIX"):
            raise RuntimeError("repro serve needs Unix-domain sockets")
        os.makedirs(self.state_dir, exist_ok=True)
        registry = sched.RunRegistry(self.state_dir)
        counter = sched.RidCounter(os.path.join(self.state_dir,
                                                "rid_counter"))
        self.scheduler = sched.Scheduler(registry, counter)
        recovered = self.scheduler.recover()
        self._claim_socket()
        if self.runners_address is not None:
            from repro.campaign.remote import (RunnerListener,
                                               parse_address)
            _, host, port = parse_address(str(self.runners_address))
            self.listener = RunnerListener(self.hub, host=host,
                                           port=port or 0).start()
        self._started = time.time()
        contact = {
            "schema": protocol.PROTOCOL_SCHEMA, "pid": os.getpid(),
            "socket": self.socket_path, "state_dir": self.state_dir,
            "started_unix": self._started,
        }
        if self.listener is not None:
            contact["runners"] = self.listener.address
        sched._atomic_write_json(contact_path(self.state_dir), contact)
        event_log().emit("serve_start", socket=self.socket_path,
                         state_dir=self.state_dir,
                         recovered=[r.rid for r in recovered])
        for target, name in ((self._accept_loop, "serve-accept"),
                             (self._executor_loop, "serve-executor")):
            thread = threading.Thread(target=target, name=name,
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return recovered

    def _claim_socket(self):
        """Bind the Unix socket, evicting only a *dead* predecessor."""
        if os.path.exists(self.socket_path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(1.0)
            try:
                probe.connect(self.socket_path)
            except OSError:
                os.unlink(self.socket_path)  # stale: owner is gone
            else:
                probe.close()
                raise RuntimeError(
                    f"another master is already serving on "
                    f"{self.socket_path}")
            finally:
                probe.close()
        directory = os.path.dirname(os.path.abspath(self.socket_path))
        os.makedirs(directory, exist_ok=True)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(self.socket_path)
        self._sock.listen(16)
        self._sock.settimeout(0.2)  # poll the shutdown flag

    def request_shutdown(self):
        """Ask the master to stop (signal-handler safe: sets a flag)."""
        self._shutdown.set()

    def serve_forever(self):
        """Block until shutdown is requested, then tear down."""
        while not self._shutdown.wait(timeout=0.5):
            pass
        self._teardown()

    def stop(self, timeout=30.0):
        """Request shutdown and wait for the threads (tests)."""
        self._shutdown.set()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.1, deadline - time.monotonic()))
        self._teardown()

    def _teardown(self):
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads = []
        with self._clients_lock:
            clients = list(self._clients)
        for client in clients:
            try:
                # shutdown() (unlike a bare close()) wakes a reader
                # thread blocked in recv() on this connection
                client.conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.conn.close()
            except OSError:
                pass
        if self.listener is not None:
            self.listener.stop()
            self.listener = None
        self.service.shutdown()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        for path in (self.socket_path, contact_path(self.state_dir)):
            try:
                os.unlink(path)
            except OSError:
                pass
        event_log().emit("serve_stop", socket=self.socket_path)

    # -- accepting and speaking to clients ---------------------------------

    def _accept_loop(self):
        while not self._shutdown.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            client = _Client(conn, peer=f"fd{conn.fileno()}")
            with self._clients_lock:
                self._clients.append(client)
            event_log().emit("serve_client_connect", peer=client.peer)
            thread = threading.Thread(target=self._client_loop,
                                      args=(client,),
                                      name=f"serve-{client.peer}",
                                      daemon=True)
            thread.start()

    def _client_loop(self, client):
        reader = protocol.LineReader()
        try:
            # Serve until either side closes — NOT until the shutdown
            # flag flips: a graceful shutdown must answer in-flight
            # requests with a structured ``shutting_down`` error, not
            # a connection reset.  Teardown wakes this loop by
            # shutting the socket down.
            while True:
                try:
                    data = client.conn.recv(65536)
                except OSError:
                    break
                if not data:
                    break
                for item in reader.feed(data):
                    if isinstance(item, protocol.Oversized):
                        self._safe_send(client, protocol.error_response(
                            None, protocol.E_OVERSIZED,
                            f"line exceeded "
                            f"{protocol.MAX_LINE_BYTES} bytes "
                            f"({item.size} seen); frame dropped"))
                        continue
                    self._handle_line(client, item)
        finally:
            self._drop_client(client)

    def _safe_send(self, client, message):
        try:
            client.send(message)
            return True
        except (OSError, ProtocolError):
            return False

    def _handle_line(self, client, line):
        """One frame in, exactly one response out — whatever happens."""
        request_id = None
        try:
            frame = protocol.decode(line)
            raw_id = frame.get("id")
            if isinstance(raw_id, (int, str)) \
                    and not isinstance(raw_id, bool):
                request_id = raw_id
            request_id, method, params = protocol.parse_request(frame)
            handler = getattr(self, f"_rpc_{method}")
            result = handler(client, params)
            self._safe_send(client,
                            protocol.response(request_id, result))
        except ProtocolError as exc:
            self._safe_send(client, protocol.error_response(
                request_id, exc.code, exc.message))
        except Exception as exc:  # noqa: BLE001 — a master-side bug
            # must become this request's error, never a dead master.
            self._safe_send(client, protocol.error_response(
                request_id, protocol.E_SERVER,
                f"{type(exc).__name__}: {exc}"))

    def _drop_client(self, client):
        # A client connection may also carry runner registrations
        # (runners can register over the Unix socket alongside
        # clients); its death releases their leases for requeue.
        self.hub.lost_channel(client)
        with self._clients_lock:
            if client in self._clients:
                self._clients.remove(client)
        with self._sub_lock:
            for subscribers in self._subs.values():
                if client in subscribers:
                    subscribers.remove(client)
        try:
            client.conn.close()
        except OSError:
            pass
        event_log().emit("serve_client_disconnect", peer=client.peer)

    # -- broadcast ---------------------------------------------------------

    def _broadcast(self, rid, message, final=False):
        with self._sub_lock:
            subscribers = list(self._subs.get(rid, ()))
            if final:
                self._subs.pop(rid, None)
        for client in subscribers:
            if not self._safe_send(client, message):
                # A dead subscriber is the *client's* problem: drop it
                # and keep the campaign streaming to everyone else.
                with self._sub_lock:
                    stale = self._subs.get(rid)
                    if stale and client in stale:
                        stale.remove(client)

    # -- RPC methods -------------------------------------------------------

    def _rpc_hello(self, client, params):
        return {
            "schema": protocol.PROTOCOL_SCHEMA,
            "pid": os.getpid(),
            "socket": self.socket_path,
            "state_dir": self.state_dir,
            "jobs": self.jobs,
            "started_unix": self._started,
            "runs": self.scheduler.counts(),
            "pool": self.service.pool_info(),
            "runners": self.hub.runners_info(),
            "runner_port": (self.listener.address
                            if self.listener is not None else None),
        }

    # Runner-facing methods: same hub whether a runner arrived over
    # the TCP listener or this Unix socket.

    def _runner_rpc(self, client, method, params):
        from repro.campaign.remote import handle_runner_method
        return handle_runner_method(self.hub, client, method, params)

    def _rpc_runner_register(self, client, params):
        return self._runner_rpc(client, "runner_register", params)

    def _rpc_runner_lease(self, client, params):
        return self._runner_rpc(client, "runner_lease", params)

    def _rpc_runner_row(self, client, params):
        return self._runner_rpc(client, "runner_row", params)

    def _rpc_runner_heartbeat(self, client, params):
        return self._runner_rpc(client, "runner_heartbeat", params)

    def _rpc_submit(self, client, params):
        if self._shutdown.is_set():
            raise ProtocolError(protocol.E_SHUTTING_DOWN,
                                "master is shutting down")
        # Validate the spec fully *before* allocating a rid: a
        # rejected submit must leave no trace.
        try:
            spec = CampaignSpec.from_dict(params["spec"])
            spec.validate()
        except (ConfigError, KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                protocol.E_BAD_PARAMS,
                f"bad campaign spec: {exc}") from exc
        options = {key: params[key]
                   for key in ("jobs", "point_timeout_s", "chunk_size")
                   if params.get(key) is not None}
        with self._sub_lock:
            record = self.scheduler.submit(
                name=spec.name, spec=spec.to_dict(),
                priority=params.get("priority", 0), options=options,
                store=params.get("out"),
                points_total=len(spec.points))
            if params.get("stream"):
                self._subs.setdefault(record.rid, []).append(client)
        event_log().emit("serve_submit", rid=record.rid, name=spec.name,
                         priority=record.priority,
                         points=record.points_total)
        return {"rid": record.rid, "state": record.state,
                "store": record.store, "points": record.points_total,
                "priority": record.priority}

    def _rpc_queue(self, client, params):
        return {"runs": self.scheduler.queue_snapshot()}

    def _rpc_status(self, client, params):
        rid = params.get("rid")
        if rid is None:
            with self._sub_lock:
                executing = sorted(self._live)
            if not executing:
                raise ProtocolError(protocol.E_NOT_FOUND,
                                    "no run is executing; pass a rid")
            rid = executing[0]
        record = self._get_record(rid)
        with self._sub_lock:
            live = self._live.get(rid)
        return {"run": record.to_dict(),
                "status": live.snapshot() if live is not None else None}

    def _get_record(self, rid):
        try:
            return self.scheduler.get(rid)
        except sched.UnknownRun:
            raise ProtocolError(protocol.E_NOT_FOUND,
                                f"no run {rid}") from None

    def _transition(self, action, rid):
        try:
            record = getattr(self.scheduler, action)(rid)
        except sched.UnknownRun:
            raise ProtocolError(protocol.E_NOT_FOUND,
                                f"no run {rid}") from None
        except sched.BadTransition as exc:
            raise ProtocolError(protocol.E_BAD_STATE, str(exc)) from None
        event_log().emit(f"serve_{action}", rid=rid, state=record.state,
                         interrupt=record.interrupt)
        return {"rid": rid, "state": record.state,
                "interrupt": record.interrupt}

    def _rpc_cancel(self, client, params):
        return self._transition("cancel", params["rid"])

    def _rpc_pause(self, client, params):
        return self._transition("pause", params["rid"])

    def _rpc_requeue(self, client, params):
        return self._transition("requeue", params["rid"])

    def _rpc_subscribe(self, client, params):
        record = self._get_record(params["rid"])
        if record.state not in sched.TERMINAL:
            with self._sub_lock:
                subscribers = self._subs.setdefault(record.rid, [])
                if client not in subscribers:
                    subscribers.append(client)
        return {"rid": record.rid, "state": record.state,
                "store": record.store}

    def _rpc_shutdown(self, client, params):
        self._shutdown.set()
        return {"stopping": True, "pid": os.getpid()}

    # -- the executor ------------------------------------------------------

    def _executor_loop(self):
        while not self._shutdown.is_set():
            record = self.scheduler.next_run(timeout=0.25)
            if record is None:
                continue
            if self._shutdown.is_set():
                # Popped during shutdown: put it straight back.
                self.scheduler.finish(record.rid, sched.QUEUED)
                break
            self._execute(record)

    def _execute(self, record):
        from repro.campaign.results import ResultStore

        rid = record.rid
        spec = CampaignSpec.from_dict(record.spec)
        jobs = record.options.get("jobs", self.jobs)
        live = LiveStatus(spec.name, total=len(spec.points),
                          path=status_path_for(record.store),
                          jobs=jobs or 1, extra={"rid": rid})
        with self._sub_lock:
            self._live[rid] = live
        self._broadcast(rid, protocol.stream_event(
            rid, "state", state=sched.RUNNING, name=spec.name,
            points=record.points_total, store=record.store))
        fresh = [0]

        def on_point(result):
            fresh[0] += 1
            record.completed += 1
            if not result.ok:
                record.failed += 1
            self._broadcast(rid, protocol.stream_event(
                rid, "point", row=result.to_row()))

        def abort():
            return (record.interrupt is not None
                    or self._shutdown.is_set())

        # With runners registered, the run distributes: remote leases
        # plus (when jobs > 1) the warm local pool stealing from the
        # same scheduler.  Otherwise the classic local path.
        transport = None
        if self.hub.active_count() > 0:
            from repro.campaign.transport import TcpRunnerTransport
            from repro.campaign.executor import default_jobs
            local_jobs = default_jobs(jobs)
            transport = TcpRunnerTransport(
                self.hub,
                local_pool=((lambda: self.service.pool(local_jobs))
                            if local_jobs > 1 else None),
                lease_timeout_s=self.lease_timeout_s)
        event_log().emit("serve_run_start", rid=rid, name=spec.name,
                         jobs=jobs,
                         runners=self.hub.active_count())
        try:
            with ResultStore(path=record.store) as store:
                result = self.service.run_campaign(
                    spec, jobs=jobs, store=store,
                    resume_from=record.store, live=live,
                    progress=on_point, abort=abort,
                    point_timeout_s=record.options.get(
                        "point_timeout_s"),
                    chunk_size=record.options.get("chunk_size"),
                    batch=record.options.get("batch"),
                    transport=transport)
        except CampaignAborted:
            if self._shutdown.is_set():
                state = sched.QUEUED   # next master resumes it
            elif record.interrupt == "pause":
                state = sched.PAUSED
            else:
                state = sched.CANCELLED
            record = self.scheduler.finish(
                rid, state, completed=record.completed,
                failed=record.failed)
        except Exception as exc:  # noqa: BLE001 — a broken run must
            # not take the executor thread (and every queued run) down.
            record = self.scheduler.finish(
                rid, sched.FAILED, completed=record.completed,
                failed=record.failed,
                error=f"{type(exc).__name__}: {exc}")
        else:
            failed = len(result.failed)
            record = self.scheduler.finish(
                rid, sched.DONE, completed=len(result.results),
                failed=failed,
                resumed=len(result.results) - fresh[0])
        finally:
            with self._sub_lock:
                self._live.pop(rid, None)
        event_log().emit("serve_run_end", rid=rid, state=record.state,
                         completed=record.completed,
                         failed=record.failed, error=record.error)
        self._broadcast(rid, protocol.stream_event(
            rid, "state", state=record.state,
            completed=record.completed, failed=record.failed,
            resumed=record.resumed, error=record.error,
            store=record.store), final=record.state in sched.TERMINAL)
