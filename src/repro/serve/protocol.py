"""The ``repro serve`` wire protocol: line-delimited JSON RPC.

One message per line, each line one JSON object, over a local stream
socket.  Three message shapes travel the wire:

* **Request** (client → master)::

      {"id": 3, "method": "submit", "params": {"spec": {...},
       "priority": 5, "stream": true}}

* **Response** (master → client, matched by ``id``)::

      {"id": 3, "ok": true, "result": {"rid": 12, ...}}
      {"id": 3, "ok": false, "error": {"code": "bad_params",
       "message": "..."}}

* **Stream event** (master → subscribed client, tagged by run id)::

      {"stream": 12, "event": "point", "row": {...}}
      {"stream": 12, "event": "state", "state": "done", ...}

The framing rules are deliberately strict, because a long-lived master
must shrug off anything a confused (or hostile) client throws at it:

* a line is at most :data:`MAX_LINE_BYTES`; longer input is discarded
  up to the next newline and answered with an ``oversized`` error —
  the connection survives, the master's memory is bounded;
* every malformed frame — truncated JSON, a non-object, a missing or
  mistyped field, an unknown method, an unknown parameter — maps to a
  structured error response (see the ``E_*`` codes), never to a
  master-side exception;
* requests are validated *before* they acquire any server state, so a
  rejected ``submit`` can never leak a run id.

Parsing is split into small pure functions (:func:`decode`,
:func:`parse_request`, :class:`LineReader`) precisely so the test
battery can fuzz them without a socket in sight.
"""

import json

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_SCHEMA",
    "LineReader",
    "Oversized",
    "ProtocolError",
    "decode",
    "encode",
    "error_response",
    "parse_request",
    "request",
    "response",
    "stream_event",
]

PROTOCOL_SCHEMA = 1

#: Hard per-line ceiling (requests *and* responses).  Generous enough
#: for a many-thousand-point campaign spec, small enough that a
#: newline-free firehose cannot balloon the master.
MAX_LINE_BYTES = 1 << 20

# -- error codes -----------------------------------------------------------

E_PARSE = "parse_error"          #: line is not valid JSON
E_OVERSIZED = "oversized"        #: line exceeded MAX_LINE_BYTES
E_BAD_REQUEST = "bad_request"    #: frame shape wrong (not an object, ...)
E_BAD_PARAMS = "bad_params"      #: params missing/mistyped/unknown
E_UNKNOWN_METHOD = "unknown_method"
E_NOT_FOUND = "not_found"        #: no such run id
E_BAD_STATE = "bad_state"        #: run exists but transition is illegal
E_SHUTTING_DOWN = "shutting_down"
E_SERVER = "server_error"        #: master-side bug, reported not fatal


class ProtocolError(Exception):
    """A violation of the wire protocol, carrying its error code."""

    def __init__(self, code, message):
        super().__init__(message)
        self.code = code
        self.message = message


# -- parameter validation --------------------------------------------------

def _typename(value):
    return type(value).__name__


def _check_int(value):
    # bool is an int subclass; a priority of `true` is a client bug we
    # want surfaced, not silently coerced.
    return isinstance(value, int) and not isinstance(value, bool)


def _check_number(value):
    return ((isinstance(value, (int, float))
             and not isinstance(value, bool)))


def _check_str(value):
    return isinstance(value, str)


def _check_bool(value):
    return isinstance(value, bool)


def _check_dict(value):
    return isinstance(value, dict)


_CHECKS = {
    "int": _check_int,
    "number": _check_number,
    "str": _check_str,
    "bool": _check_bool,
    "dict": _check_dict,
}

#: method -> {param: (required, type tag, nullable)}
METHOD_PARAMS = {
    "hello": {},
    "submit": {
        "spec": (True, "dict", False),
        "priority": (False, "int", False),
        "jobs": (False, "int", True),
        "point_timeout_s": (False, "number", True),
        "chunk_size": (False, "int", True),
        "stream": (False, "bool", False),
        "out": (False, "str", True),
    },
    "queue": {},
    "status": {"rid": (False, "int", False)},
    "cancel": {"rid": (True, "int", False)},
    "pause": {"rid": (True, "int", False)},
    "requeue": {"rid": (True, "int", False)},
    "subscribe": {"rid": (True, "int", False)},
    "shutdown": {},
    # Runner-facing methods (repro runner <-> master).  Rows travel as
    # plain dicts — batch kernel stats ride the same method as result
    # rows, tagged by their "__batch__" key, exactly like the local
    # pool's result queue.
    "runner_register": {
        "name": (False, "str", True),
        "pid": (False, "int", True),
        "slots": (False, "int", True),
    },
    "runner_lease": {"runner": (True, "int", False)},
    "runner_row": {
        "runner": (True, "int", False),
        "chunk": (True, "int", False),
        "epoch": (True, "int", False),
        "row": (True, "dict", False),
    },
    "runner_heartbeat": {"runner": (True, "int", False)},
}


def parse_request(obj):
    """Validate a decoded frame as a request; ``(id, method, params)``.

    Raises :class:`ProtocolError` on any violation.  Validation is
    strict — unknown parameters are rejected, ``bool`` does not pass
    for ``int`` — so protocol drift between client and master surfaces
    as a clean error instead of a silent misbehaviour.
    """
    request_id = obj.get("id")
    if not isinstance(request_id, (int, str, type(None))) \
            or isinstance(request_id, bool):
        raise ProtocolError(
            E_BAD_REQUEST, f"id must be an int, string or null, "
                           f"not {_typename(request_id)}")
    method = obj.get("method")
    if not isinstance(method, str):
        raise ProtocolError(
            E_BAD_REQUEST, "request needs a string 'method' field")
    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            E_BAD_REQUEST, f"params must be an object, "
                           f"not {_typename(params)}")
    schema = METHOD_PARAMS.get(method)
    if schema is None:
        raise ProtocolError(
            E_UNKNOWN_METHOD,
            f"unknown method {method!r} (know: "
            f"{', '.join(sorted(METHOD_PARAMS))})")
    for name in params:
        if name not in schema:
            raise ProtocolError(
                E_BAD_PARAMS, f"{method}: unknown parameter {name!r}")
    for name, (required, tag, nullable) in schema.items():
        if name not in params:
            if required:
                raise ProtocolError(
                    E_BAD_PARAMS, f"{method}: missing required "
                                  f"parameter {name!r}")
            continue
        value = params[name]
        if value is None and nullable:
            continue
        if not _CHECKS[tag](value):
            raise ProtocolError(
                E_BAD_PARAMS,
                f"{method}: parameter {name!r} must be {tag}"
                f"{' or null' if nullable else ''}, "
                f"got {_typename(value)}")
    return request_id, method, params


# -- message builders ------------------------------------------------------

def request(method, params=None, request_id=0):
    return {"id": request_id, "method": method, "params": params or {}}


def response(request_id, result):
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, code, message):
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message}}


def stream_event(rid, event, **fields):
    record = {"stream": rid, "event": event}
    record.update(fields)
    return record


# -- framing ---------------------------------------------------------------

def encode(message):
    """One message as a complete wire line (bytes, newline included)."""
    line = json.dumps(message, sort_keys=True,
                      separators=(",", ":"), default=str)
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            E_OVERSIZED, f"encoded message is {len(data)} bytes "
                         f"(limit {MAX_LINE_BYTES})")
    return data


def decode(line):
    """One wire line back into a message dict (raises on violations)."""
    if isinstance(line, str):
        line = line.encode("utf-8")
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            E_OVERSIZED, f"line is {len(line)} bytes "
                         f"(limit {MAX_LINE_BYTES})")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(E_PARSE, f"not a JSON line: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            E_BAD_REQUEST, f"frame must be a JSON object, "
                           f"not {_typename(obj)}")
    return obj


class Oversized:
    """Yielded by :class:`LineReader` in place of a too-long line."""

    __slots__ = ("size",)

    def __init__(self, size):
        self.size = size

    def __repr__(self):
        return f"Oversized({self.size})"


class LineReader:
    """Incremental newline framer over arbitrary byte chunks.

    Feed whatever ``recv`` returned; get back complete lines (without
    the newline) plus :class:`Oversized` markers for lines that blew
    the budget.  An oversized line is emitted as **one** marker the
    moment the budget breaks, and everything up to its terminating
    newline is discarded without buffering — a newline-free flood
    costs O(chunk), not O(stream).
    """

    def __init__(self, max_line=MAX_LINE_BYTES):
        self.max_line = max_line
        self._buffer = bytearray()
        self._discarding = False

    def feed(self, data):
        """Absorb ``data``; return the newly-complete items."""
        items = []
        self._buffer += data
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if self._discarding:
                    # Still inside the poisoned line: drop what we have.
                    self._buffer.clear()
                elif len(self._buffer) > self.max_line:
                    items.append(Oversized(len(self._buffer)))
                    self._discarding = True
                    self._buffer.clear()
                break
            line = bytes(self._buffer[:newline])
            del self._buffer[:newline + 1]
            if self._discarding:
                # The tail of a line already reported as oversized.
                self._discarding = False
                continue
            if len(line) > self.max_line:
                items.append(Oversized(len(line)))
                continue
            if line.strip():
                items.append(line)
        return items
