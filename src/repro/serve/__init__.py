"""repro.serve — the long-lived campaign master and its thin clients.

Every ``repro campaign`` used to pay the full warm-up cost — fork a
pool, prime the steppers — and take its warm fleet to the grave with
the CLI process.  This package keeps the fleet alive: ``repro serve``
starts a **master** daemon that owns the process-wide
:class:`~repro.perf.service.ExecutionService` (persistent pre-warmed
:class:`~repro.campaign.executor.WorkerPool`, disk-cached steppers)
and serves it to any number of submitters over a local Unix socket:

* :mod:`repro.serve.protocol` — the line-delimited JSON RPC: strict
  framing, structured errors, fuzz-hardened parsing;
* :mod:`repro.serve.scheduler` — persistent run records, monotonic
  run-id allocation, and the ARTIQ-style priority queue (higher
  priority first, submission order within a priority);
* :mod:`repro.serve.master` — the daemon: accepts clients, executes
  one run at a time over the shared pool, streams result rows to
  subscribers, survives client death / worker death / its own
  restart;
* :mod:`repro.serve.client` — the thin client behind ``repro
  submit``, ``repro queue``, ``repro cancel``, and ``repro watch``'s
  live-socket mode.

Determinism is inherited, not reimplemented: the master routes every
run through :func:`repro.campaign.run_campaign` with the run's own
store as its resume source, so a campaign submitted through the
master — cancelled, requeued, resumed across a master restart,
sharded over a dying pool — produces the same per-point rows as
``repro campaign`` run directly.
"""

from repro.serve.client import (ServeClient, ServeError, find_socket,
                                server_available)
from repro.serve.master import Master, contact_path, read_contact
from repro.serve.protocol import (MAX_LINE_BYTES, PROTOCOL_SCHEMA,
                                  LineReader, ProtocolError)
from repro.serve.scheduler import (RidCounter, RunRecord, RunRegistry,
                                   Scheduler, default_state_dir)

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_SCHEMA",
    "LineReader",
    "Master",
    "ProtocolError",
    "RidCounter",
    "RunRecord",
    "RunRegistry",
    "Scheduler",
    "ServeClient",
    "ServeError",
    "contact_path",
    "default_state_dir",
    "find_socket",
    "read_contact",
    "server_available",
]
