"""Thin client for the ``repro serve`` master.

One connection, one in-flight request at a time — which is all the
CLI ever needs — plus a generator over the stream events the master
pushes for subscribed runs.  Stream events that arrive while a
response is awaited are buffered, so request/response and streaming
can share the socket without a demultiplexer.

Socket discovery (:func:`find_socket`): an explicit path wins, then
``$REPRO_SERVE_SOCKET``, then the contact file a live master writes
into the state directory, then the state directory's default socket
name.  :func:`server_available` answers whether anything is actually
listening there — ``repro watch`` uses it to decide between the live
socket and ``status.json`` polling.
"""

import os
import socket

from repro.serve import protocol
from repro.serve.master import SOCKET_NAME, read_contact
from repro.serve.scheduler import default_state_dir

__all__ = ["ServeClient", "ServeError", "find_socket",
           "server_available"]

#: Environment variable naming the master socket for thin clients.
SOCKET_ENV = "REPRO_SERVE_SOCKET"


class ServeError(Exception):
    """An error response from the master (or a broken conversation)."""

    def __init__(self, code, message):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


def find_socket(explicit=None, state_dir=None):
    """Resolve the master socket path (without touching the network)."""
    if explicit:
        return explicit
    env = os.environ.get(SOCKET_ENV)
    if env:
        return env
    state_dir = state_dir or default_state_dir()
    contact = read_contact(state_dir)
    if contact is not None:
        return contact["socket"]
    return os.path.join(state_dir, SOCKET_NAME)


def server_available(socket_path, timeout=1.0):
    """Whether a master is actually accepting on ``socket_path``."""
    if not socket_path or not hasattr(socket, "AF_UNIX"):
        return False
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(timeout)
    try:
        probe.connect(socket_path)
        return True
    except OSError:
        return False
    finally:
        probe.close()


class ServeClient:
    """One conversation with the master (use as a context manager)."""

    def __init__(self, socket_path, timeout=60.0):
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(socket_path)
        self._reader = protocol.LineReader()
        self._lines = []
        self._stream_buffer = []
        self._next_id = 0

    # -- plumbing ----------------------------------------------------------

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()

    def _read_message(self):
        while True:
            if self._lines:
                line = self._lines.pop(0)
                if isinstance(line, protocol.Oversized):
                    raise ServeError(
                        protocol.E_OVERSIZED,
                        f"master sent an oversized line ({line.size} "
                        f"bytes)")
                return protocol.decode(line)
            try:
                data = self._sock.recv(65536)
            except socket.timeout:
                raise ServeError(
                    "timeout", f"no reply from {self.socket_path} "
                               f"within the socket timeout") from None
            if not data:
                raise ServeError("disconnected",
                                 "master closed the connection")
            self._lines.extend(self._reader.feed(data))

    # -- requests ----------------------------------------------------------

    def request(self, method, **params):
        """One RPC round-trip; returns the result dict or raises
        :class:`ServeError`.  Stream events that arrive first are
        buffered for :meth:`events`."""
        self._next_id += 1
        request_id = self._next_id
        self._sock.sendall(protocol.encode(
            protocol.request(method, params, request_id=request_id)))
        while True:
            message = self._read_message()
            if "stream" in message:
                self._stream_buffer.append(message)
                continue
            if message.get("id") != request_id:
                continue  # a stale reply; not ours
            if message.get("ok"):
                return message.get("result")
            error = message.get("error") or {}
            raise ServeError(error.get("code", "unknown"),
                             error.get("message", "(no message)"))

    # -- streaming ---------------------------------------------------------

    def events(self, rid=None):
        """Yield stream events (optionally only for ``rid``) until the
        run reports a state event; the state event is yielded last."""
        from repro.serve import scheduler as sched
        while True:
            if self._stream_buffer:
                message = self._stream_buffer.pop(0)
            else:
                message = self._read_message()
                if "stream" not in message:
                    continue  # unsolicited response; drop
            if rid is not None and message.get("stream") != rid:
                continue
            yield message
            if (message.get("event") == "state"
                    and message.get("state") != sched.RUNNING):
                return

    # -- conveniences ------------------------------------------------------

    def hello(self):
        return self.request("hello")

    def submit(self, spec, priority=0, stream=False, jobs=None,
               point_timeout_s=None, chunk_size=None, out=None):
        """Submit a campaign spec (a dict, explicit points or grid
        shorthand); returns ``{rid, state, store, points, priority}``."""
        params = {"spec": spec, "priority": priority, "stream": stream}
        if jobs is not None:
            params["jobs"] = jobs
        if point_timeout_s is not None:
            params["point_timeout_s"] = point_timeout_s
        if chunk_size is not None:
            params["chunk_size"] = chunk_size
        if out is not None:
            params["out"] = out
        return self.request("submit", **params)

    def queue(self):
        return self.request("queue")["runs"]

    def status(self, rid=None):
        if rid is None:
            return self.request("status")
        return self.request("status", rid=rid)

    def cancel(self, rid):
        return self.request("cancel", rid=rid)

    def pause(self, rid):
        return self.request("pause", rid=rid)

    def requeue(self, rid):
        return self.request("requeue", rid=rid)

    def subscribe(self, rid):
        return self.request("subscribe", rid=rid)

    def shutdown(self):
        return self.request("shutdown")
