"""Run scheduling and persistence for the ``repro serve`` master.

The master's durable state all lives in one *state directory*
(default ``~/.cache/repro/serve``, ``$REPRO_SERVE_DIR`` overrides):

* ``rid_counter`` — the monotonic run-id allocator.  Persisted on
  every allocation, so a restarted master never reissues an id;
* ``runs/<rid>.json`` — one :class:`RunRecord` per submitted run
  (spec, priority, options, state, progress), atomically rewritten on
  every transition;
* ``runs/<rid>.results.jsonl`` — the run's result store (unless the
  submitter chose a path), which doubles as the resume source when a
  run is requeued or the master restarts;
* ``serve.sock`` / ``serve.json`` — the live master's socket and
  contact file (written by :mod:`repro.serve.master`).

Because every record and every result row is on disk before the
client hears about it, a master killed at any instant restarts into a
consistent world: :meth:`Scheduler.recover` puts interrupted runs
back on the queue, and the executor resumes them from their own
stores under their original run ids.

The queue itself is ARTIQ-flavoured: higher ``priority`` runs first,
ties break on run id (submission order).  Cancelling or pausing a
queued run leaves its heap entry behind — entries are validated
against the record's current state when popped (lazy deletion), so
state changes never have to hunt through the heap.
"""

import heapq
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "BadTransition",
    "RidCounter",
    "RunRecord",
    "RunRegistry",
    "Scheduler",
    "UnknownRun",
    "default_state_dir",
]

#: Environment variable naming the serve state directory.
STATE_DIR_ENV = "REPRO_SERVE_DIR"

# -- run states ------------------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
PAUSED = "paused"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a dead master's recovery puts back on the queue.
RECOVERABLE = (QUEUED, RUNNING)
#: States :meth:`Scheduler.requeue` accepts (DONE is excluded — a
#: finished run has nothing left to resume).
REQUEUEABLE = (PAUSED, CANCELLED, FAILED)
#: States no transition leaves except ``requeue``.
TERMINAL = (DONE, FAILED, CANCELLED)


def default_state_dir():
    """The serve state directory (``$REPRO_SERVE_DIR`` or the cache)."""
    env = os.environ.get(STATE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "serve")


class UnknownRun(KeyError):
    """No record for that run id."""


class BadTransition(ValueError):
    """The run exists but the requested transition is illegal."""


def _atomic_write_json(path, payload):
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, prefix=".serve-",
                                     suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


@dataclass
class RunRecord:
    """One submitted run: identity, payload, and lifecycle state."""

    rid: int
    name: str
    spec: dict
    priority: int = 0
    state: str = QUEUED
    store: str = None
    options: dict = field(default_factory=dict)
    points_total: int = 0
    completed: int = 0
    failed: int = 0
    resumed: int = 0
    error: str = None
    created_unix: float = 0.0
    started_unix: float = None
    finished_unix: float = None
    #: Transient (never persisted): "cancel"/"pause" requested while
    #: the run executes; the master's abort hook polls it.
    interrupt: str = None

    def to_dict(self):
        return {
            "rid": self.rid, "name": self.name, "spec": self.spec,
            "priority": self.priority, "state": self.state,
            "store": self.store, "options": dict(self.options),
            "points_total": self.points_total,
            "completed": self.completed, "failed": self.failed,
            "resumed": self.resumed, "error": self.error,
            "created_unix": self.created_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
        }

    @classmethod
    def from_dict(cls, data):
        known = {f for f in cls.__dataclass_fields__ if f != "interrupt"}
        return cls(**{key: value for key, value in data.items()
                      if key in known})


class RidCounter:
    """Monotonic run-id allocator, persisted per allocation.

    The counter file is written atomically *before* the id is handed
    out, so even a master killed between allocation and first use
    never reuses a rid after restart.
    """

    def __init__(self, path):
        self.path = path
        self._lock = threading.Lock()
        self._value = self._load()

    def _load(self):
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return int(handle.read().strip() or 0)
        except (OSError, ValueError):
            return 0

    @property
    def value(self):
        return self._value

    def next(self):
        with self._lock:
            self._value += 1
            _atomic_write_json(self.path, self._value)
            return self._value


class RunRegistry:
    """On-disk store of :class:`RunRecord` documents."""

    def __init__(self, state_dir):
        self.state_dir = state_dir
        self.runs_dir = os.path.join(state_dir, "runs")

    def record_path(self, rid):
        return os.path.join(self.runs_dir, f"{rid}.json")

    def default_store(self, rid):
        """Where a run's results land unless the submitter chose."""
        return os.path.join(self.runs_dir, f"{rid}.results.jsonl")

    def save(self, record):
        _atomic_write_json(self.record_path(record.rid),
                           record.to_dict())

    def load(self, rid):
        try:
            with open(self.record_path(rid), "r",
                      encoding="utf-8") as handle:
                return RunRecord.from_dict(json.load(handle))
        except (OSError, ValueError, TypeError, KeyError):
            return None

    def load_all(self):
        """Every readable record, sorted by rid (corrupt files are
        skipped — one damaged record must not take the master down)."""
        records = []
        try:
            names = os.listdir(self.runs_dir)
        except OSError:
            return records
        for name in names:
            if not name.endswith(".json") or name.endswith(".status.json"):
                continue
            stem = name[:-len(".json")]
            if not stem.isdigit():
                continue
            record = self.load(int(stem))
            if record is not None:
                records.append(record)
        records.sort(key=lambda record: record.rid)
        return records


class Scheduler:
    """Thread-safe priority queue of runs over a persistent registry.

    All state transitions flow through here (and are persisted before
    they are visible), so the master's RPC threads and its executor
    thread share one consistent view.
    """

    def __init__(self, registry, counter):
        self.registry = registry
        self.counter = counter
        self._cond = threading.Condition()
        self._heap = []  # (-priority, rid): higher priority pops first
        self._records = {record.rid: record
                         for record in registry.load_all()}

    # -- submission and recovery ------------------------------------------

    def submit(self, name, spec, priority=0, options=None, store=None,
               points_total=0):
        """Persist and enqueue a new run; returns its record."""
        rid = self.counter.next()
        record = RunRecord(
            rid=rid, name=name, spec=spec, priority=int(priority),
            store=store or self.registry.default_store(rid),
            options=dict(options or {}), points_total=points_total,
            created_unix=time.time())
        self.registry.save(record)
        with self._cond:
            self._records[rid] = record
            heapq.heappush(self._heap, (-record.priority, rid))
            self._cond.notify_all()
        return record

    def recover(self):
        """Requeue runs a previous master left queued or running.

        Their stores already hold every completed point, so the
        executor resumes them (same rid, same store) rather than
        restarting from scratch.
        """
        requeued = []
        with self._cond:
            for record in sorted(self._records.values(),
                                 key=lambda r: r.rid):
                if record.state in RECOVERABLE:
                    record.state = QUEUED
                    record.interrupt = None
                    self.registry.save(record)
                    heapq.heappush(self._heap,
                                   (-record.priority, record.rid))
                    requeued.append(record)
            if requeued:
                self._cond.notify_all()
        return requeued

    # -- the executor's side ----------------------------------------------

    def next_run(self, timeout=None):
        """Pop the highest-priority queued run and mark it running
        (``None`` on timeout).  Stale heap entries — runs cancelled or
        paused while queued — are discarded here."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            while True:
                while self._heap:
                    _, rid = heapq.heappop(self._heap)
                    record = self._records.get(rid)
                    if record is None or record.state != QUEUED:
                        continue  # lazy deletion
                    record.state = RUNNING
                    record.interrupt = None
                    record.started_unix = time.time()
                    self.registry.save(record)
                    return record
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)

    def finish(self, rid, state, completed=None, failed=None,
               resumed=None, error=None):
        """Record the outcome of an executed run."""
        with self._cond:
            record = self._require(rid)
            record.state = state
            record.interrupt = None
            record.error = error
            if completed is not None:
                record.completed = completed
            if failed is not None:
                record.failed = failed
            if resumed is not None:
                record.resumed = resumed
            if state in TERMINAL:
                record.finished_unix = time.time()
            elif state == QUEUED:
                # Going back on the queue (graceful shutdown): the
                # next master's recover() or this one's next_run will
                # pick it up.
                heapq.heappush(self._heap, (-record.priority, rid))
                self._cond.notify_all()
            self.registry.save(record)
            return record

    # -- client-driven transitions ----------------------------------------

    def _require(self, rid):
        record = self._records.get(rid)
        if record is None:
            raise UnknownRun(rid)
        return record

    def cancel(self, rid):
        """Cancel a queued/paused run now, or flag a running one (the
        executor aborts it at the next point boundary)."""
        with self._cond:
            record = self._require(rid)
            if record.state in (QUEUED, PAUSED):
                record.state = CANCELLED
                record.finished_unix = time.time()
                self.registry.save(record)
            elif record.state == RUNNING:
                record.interrupt = "cancel"
            else:
                raise BadTransition(
                    f"run {rid} is {record.state}; nothing to cancel")
            return record

    def pause(self, rid):
        """Park a queued run, or flag a running one to stop after the
        current point (resume later with :meth:`requeue`)."""
        with self._cond:
            record = self._require(rid)
            if record.state == QUEUED:
                record.state = PAUSED
                self.registry.save(record)
            elif record.state == RUNNING:
                record.interrupt = "pause"
            else:
                raise BadTransition(
                    f"run {rid} is {record.state}; only queued or "
                    f"running runs pause")
            return record

    def requeue(self, rid):
        """Put a paused/cancelled/failed run back on the queue; its
        store resumes it from wherever it stopped."""
        with self._cond:
            record = self._require(rid)
            if record.state not in REQUEUEABLE:
                raise BadTransition(
                    f"run {rid} is {record.state}; only "
                    f"{'/'.join(REQUEUEABLE)} runs requeue")
            record.state = QUEUED
            record.interrupt = None
            record.error = None
            record.finished_unix = None
            self.registry.save(record)
            heapq.heappush(self._heap, (-record.priority, rid))
            self._cond.notify_all()
            return record

    # -- introspection -----------------------------------------------------

    def get(self, rid):
        with self._cond:
            return self._require(rid)

    def queue_snapshot(self):
        """All known runs as dicts, sorted by rid."""
        with self._cond:
            return [self._records[rid].to_dict()
                    for rid in sorted(self._records)]

    def counts(self):
        """``{state: count}`` over every known run."""
        with self._cond:
            totals = {}
            for record in self._records.values():
                totals[record.state] = totals.get(record.state, 0) + 1
            return totals
