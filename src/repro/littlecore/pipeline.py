"""In-order 5-stage pipeline timing for the little core.

The model advances one instruction at a time and answers "when does
this instruction leave the pipeline?" in big-core cycles.  It captures
the effects the paper identifies as decisive for the big/little
performance gap (Sec. III-C): the iterative divider (`div_unroll`),
the FPU depth and whether it pipelines, the load-use bubble, the
taken-branch penalty, and I-cache misses into the shared L2.

The pipeline object is persistent per little core so that I-cache and
divider state carry across checkpoint segments.
"""

from repro.common.config import LittleCoreConfig
from repro.isa.instructions import InstrClass
from repro.mem.cache import CacheModel


class LittleCorePipeline:
    """Cycle bookkeeping for one little core."""

    #: Extra cycles an L1I miss costs (trip to the shared L2).
    ICACHE_MISS_PENALTY = 16

    def __init__(self, config=None, clock_ratio=2, l2_port=None):
        self.config = config if config is not None else LittleCoreConfig()
        self.ratio = clock_ratio
        self.icache = CacheModel(self.config.icache)
        self.dcache = CacheModel(self.config.dcache)
        self._l2_port = l2_port
        # All in big-core cycles:
        self.time = 0              # cycle the next instruction may issue
        self._div_free = 0
        self._fpu_free = 0
        self._reg_ready = {}       # reg name -> big-cycle value is ready
        self.instructions_retired = 0
        self.busy_cycles = 0

    def reset_to(self, cycle):
        """Start a fresh activity (segment / thread slice) at ``cycle``."""
        if cycle > self.time:
            self.time = cycle
        self._reg_ready.clear()

    def _source_ready(self, instr):
        spec = instr.spec
        ready = 0
        if spec.reads_int_rs1:
            ready = max(ready, self._reg_ready.get(("x", instr.rs1), 0))
        if spec.reads_int_rs2:
            ready = max(ready, self._reg_ready.get(("x", instr.rs2), 0))
        if spec.reads_fp_rs1:
            ready = max(ready, self._reg_ready.get(("f", instr.rs1), 0))
        if spec.reads_fp_rs2:
            ready = max(ready, self._reg_ready.get(("f", instr.rs2), 0))
        return ready

    def _mark_dest(self, instr, ready_cycle):
        spec = instr.spec
        if spec.writes_int_rd and instr.rd:
            self._reg_ready[("x", instr.rd)] = ready_cycle
        elif spec.writes_fp_rd:
            self._reg_ready[("f", instr.rd)] = ready_cycle

    def step(self, instr, pc, taken_branch=False, load_data_available=None,
             extra_stall=0):
        """Advance the pipeline through one instruction.

        ``load_data_available`` (big cycles) is when the LSL (check
        mode) or D-cache (application mode) can supply a load's data;
        ``None`` models an L1 hit.  Returns the cycle at which the
        instruction's *result* is available (its completion time).
        """
        cfg = self.config
        ratio = self.ratio
        start = self.time

        # Instruction fetch: a miss on a new line stalls the front end.
        if not self.icache.lookup(pc):
            self.icache.fill(pc)
            start += self.ICACHE_MISS_PENALTY * ratio

        # Structural hazard on issue + source operands.
        issue = max(start, self._source_ready(instr))
        if extra_stall:
            issue += extra_stall

        iclass = instr.spec.iclass
        complete = issue + ratio  # default single-cycle op
        next_issue = issue + ratio

        if iclass is InstrClass.DIV:
            issue = max(issue, self._div_free)
            busy = cfg.div_latency * ratio
            complete = issue + busy
            self._div_free = complete          # iterative: blocks the unit
            next_issue = issue + ratio
        elif iclass is InstrClass.FPDIV:
            issue = max(issue, self._fpu_free)
            busy = cfg.fdiv_latency * ratio
            complete = issue + busy
            self._fpu_free = complete
            next_issue = issue + ratio
        elif iclass is InstrClass.FP:
            issue = max(issue, self._fpu_free)
            complete = issue + cfg.fp_latency * ratio
            self._fpu_free = issue + cfg.fp_occupancy * ratio
            next_issue = issue + ratio
        elif iclass is InstrClass.MUL:
            complete = issue + cfg.mul_latency * ratio
            next_issue = issue + ratio
        elif iclass is InstrClass.LOAD:
            data_at = issue + (1 + cfg.load_use_penalty) * ratio
            if load_data_available is not None:
                data_at = max(data_at, load_data_available)
            complete = data_at
            next_issue = issue + ratio
        elif iclass is InstrClass.STORE:
            complete = issue + ratio
            next_issue = issue + ratio
        elif iclass in (InstrClass.BRANCH, InstrClass.JUMP):
            complete = issue + ratio
            next_issue = issue + ratio
            if taken_branch:
                next_issue += cfg.branch_penalty * ratio
        elif iclass is InstrClass.MEEK or iclass is InstrClass.CSR:
            complete = issue + ratio
            next_issue = issue + ratio

        self._mark_dest(instr, complete)
        self.time = next_issue
        self.instructions_retired += 1
        self.busy_cycles += next_issue - start
        return complete

    def dcache_load(self, addr, now):
        """Application-mode load latency through the little D-cache."""
        if self.dcache.lookup(addr):
            return self.config.dcache.hit_latency * self.ratio
        self.dcache.fill(addr)
        return self.ICACHE_MISS_PENALTY * self.ratio

    def stats(self):
        return {
            "instructions": self.instructions_retired,
            "busy_cycles": self.busy_cycles,
            "icache": self.icache.stats(),
        }
