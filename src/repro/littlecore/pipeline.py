"""In-order 5-stage pipeline timing for the little core.

The model advances one instruction at a time and answers "when does
this instruction leave the pipeline?" in big-core cycles.  It captures
the effects the paper identifies as decisive for the big/little
performance gap (Sec. III-C): the iterative divider (`div_unroll`),
the FPU depth and whether it pipelines, the load-use bubble, the
taken-branch penalty, and I-cache misses into the shared L2.

The pipeline object is persistent per little core so that I-cache and
divider state carry across checkpoint segments.
"""

from repro.common.config import LittleCoreConfig
from repro.isa.instructions import InstrClass
from repro.mem.cache import CacheModel

_ZEROS32 = [0] * 32


class LittleCorePipeline:
    """Cycle bookkeeping for one little core."""

    #: Extra cycles an L1I miss costs (trip to the shared L2).
    ICACHE_MISS_PENALTY = 16

    def __init__(self, config=None, clock_ratio=2, l2_port=None):
        self.config = config if config is not None else LittleCoreConfig()
        self.ratio = clock_ratio
        self.icache = CacheModel(self.config.icache)
        self.dcache = CacheModel(self.config.dcache)
        self._l2_port = l2_port
        # Latency products are config constants; precompute them in
        # big-core cycles so the per-instruction path multiplies
        # nothing and never touches the config object.
        cfg = self.config
        ratio = clock_ratio
        self._miss_penalty = self.ICACHE_MISS_PENALTY * ratio
        self._div_busy = cfg.div_latency * ratio
        self._fdiv_busy = cfg.fdiv_latency * ratio
        self._fp_lat = cfg.fp_latency * ratio
        self._fp_occ = cfg.fp_occupancy * ratio
        self._mul_lat = cfg.mul_latency * ratio
        self._load_data_lat = (1 + cfg.load_use_penalty) * ratio
        self._branch_pen = cfg.branch_penalty * ratio
        # All in big-core cycles:
        self.time = 0              # cycle the next instruction may issue
        self._div_free = 0
        self._fpu_free = 0
        # Scoreboards: cycle each architectural register is ready.
        # Flat lists (one per file) replace the tuple-keyed dict the
        # profiler flagged — no tuple allocation per lookup.
        self._int_ready = [0] * 32
        self._fp_ready = [0] * 32
        self.instructions_retired = 0
        self.busy_cycles = 0

    def reset_to(self, cycle):
        """Start a fresh activity (segment / thread slice) at ``cycle``."""
        if cycle > self.time:
            self.time = cycle
        # In-place clear: the fast kernel's fused replay closures
        # capture these list objects, so their identity must survive
        # segment resets.
        self._int_ready[:] = _ZEROS32
        self._fp_ready[:] = _ZEROS32

    def step(self, instr, pc, taken_branch=False, load_data_available=None,
             extra_stall=0):
        """Advance the pipeline through one instruction.

        ``load_data_available`` (big cycles) is when the LSL (check
        mode) or D-cache (application mode) can supply a load's data;
        ``None`` models an L1 hit.  Returns the cycle at which the
        instruction's *result* is available (its completion time).
        """
        ratio = self.ratio
        start = self.time

        # Instruction fetch: a miss on a new line stalls the front end.
        if not self.icache.lookup(pc):
            self.icache.fill(pc)
            start += self._miss_penalty

        # Structural hazard on issue + source operands (scoreboard
        # checks inlined from _source_ready/_mark_dest).
        spec = instr.spec
        int_ready = self._int_ready
        fp_ready = self._fp_ready
        issue = start
        if spec.reads_int_rs1 and int_ready[instr.rs1] > issue:
            issue = int_ready[instr.rs1]
        if spec.reads_int_rs2 and int_ready[instr.rs2] > issue:
            issue = int_ready[instr.rs2]
        if spec.reads_fp_rs1 and fp_ready[instr.rs1] > issue:
            issue = fp_ready[instr.rs1]
        if spec.reads_fp_rs2 and fp_ready[instr.rs2] > issue:
            issue = fp_ready[instr.rs2]
        if extra_stall:
            issue += extra_stall

        iclass = spec.iclass
        complete = issue + ratio  # default single-cycle op
        next_issue = issue + ratio

        if iclass is InstrClass.DIV:
            issue = max(issue, self._div_free)
            complete = issue + self._div_busy
            self._div_free = complete          # iterative: blocks the unit
            next_issue = issue + ratio
        elif iclass is InstrClass.FPDIV:
            issue = max(issue, self._fpu_free)
            complete = issue + self._fdiv_busy
            self._fpu_free = complete
            next_issue = issue + ratio
        elif iclass is InstrClass.FP:
            issue = max(issue, self._fpu_free)
            complete = issue + self._fp_lat
            self._fpu_free = issue + self._fp_occ
            next_issue = issue + ratio
        elif iclass is InstrClass.MUL:
            complete = issue + self._mul_lat
            next_issue = issue + ratio
        elif iclass is InstrClass.LOAD:
            data_at = issue + self._load_data_lat
            if load_data_available is not None and \
                    load_data_available > data_at:
                data_at = load_data_available
            complete = data_at
            next_issue = issue + ratio
        elif iclass is InstrClass.BRANCH or iclass is InstrClass.JUMP:
            if taken_branch:
                next_issue += self._branch_pen

        if spec.writes_int_rd and instr.rd:
            int_ready[instr.rd] = complete
        elif spec.writes_fp_rd:
            fp_ready[instr.rd] = complete
        self.time = next_issue
        self.instructions_retired += 1
        self.busy_cycles += next_issue - start
        return complete

    def dcache_load(self, addr, now):
        """Application-mode load latency through the little D-cache."""
        if self.dcache.lookup(addr):
            return self.config.dcache.hit_latency * self.ratio
        self.dcache.fill(addr)
        return self.ICACHE_MISS_PENALTY * self.ratio

    def stats(self):
        return {
            "instructions": self.instructions_retired,
            "busy_cycles": self.busy_cycles,
            "icache": self.icache.stats(),
        }
