"""Standalone little-core execution (application mode).

Little cores are real cores: when not checking they run ordinary
threads (Sec. II — "allowing little cores to execute standard processes
as well").  :class:`LittleCore` runs a program functionally with the
5-stage pipeline timing and the little D-cache; it is used by the OS
model for application-mode threads and by the Fig. 10 experiment to
measure a little core's raw performance on each workload's instruction
stream.
"""

from repro.common.config import LittleCoreConfig
from repro.isa.semantics import execute
from repro.isa.state import ArchState
from repro.littlecore.msu import ModeSwitchUnit
from repro.littlecore.pipeline import LittleCorePipeline
from repro.perf.decode import decode_program, slow_kernel_enabled


class LittleCoreRunResult:
    """Summary of one standalone little-core execution."""

    def __init__(self, instructions, cycles, state, halted_by, pipeline):
        self.instructions = instructions
        self.cycles = cycles
        self.state = state
        self.halted_by = halted_by
        self.pipeline_stats = pipeline.stats()

    @property
    def ipc(self):
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles

    @property
    def cpi(self):
        if not self.instructions:
            return 0.0
        return self.cycles / self.instructions

    def __repr__(self):
        return (f"LittleCoreRunResult({self.instructions} instrs, "
                f"{self.cycles:.0f} cycles, IPC={self.ipc:.2f})")


class LittleCore:
    """One Rocket-class core in application mode.

    ``clock_ratio`` expresses timing in big-core cycles (2 big cycles
    per little cycle at Table II frequencies); pass ``clock_ratio=1``
    to measure in the little core's own cycles.
    """

    def __init__(self, config=None, clock_ratio=2, core_id=0):
        self.config = config if config is not None else LittleCoreConfig()
        self.pipeline = LittleCorePipeline(self.config, clock_ratio=clock_ratio)
        self.msu = ModeSwitchUnit(core_id)
        self.ratio = clock_ratio

    def run(self, program, max_instructions=None, initial_state=None,
            halt_on_trap=True):
        """Execute ``program`` to completion in application mode."""
        state = initial_state
        if state is None:
            state = ArchState(pc=program.entry_pc)
            program.data.apply(state.memory)
        pipeline = self.pipeline
        executed = 0
        halted_by = "end"
        decoded = None if slow_kernel_enabled() else decode_program(program)
        while True:
            if max_instructions is not None and executed >= max_instructions:
                halted_by = "limit"
                break
            pc = state.pc
            if decoded is not None:
                dec = decoded.lookup(pc)
                if dec is None:
                    break
                instr = dec.instr
                result = dec.fn(state, None, None)
            else:
                instr = program.fetch(pc)
                if instr is None:
                    break
                result = execute(instr, state)
            load_available = None
            if result.is_load:
                latency = pipeline.dcache_load(result.mem_addr, pipeline.time)
                load_available = pipeline.time + latency
            pipeline.step(instr, pc, taken_branch=result.taken,
                          load_data_available=load_available)
            executed += 1
            if result.trap and halt_on_trap:
                halted_by = result.trap
                break
        return LittleCoreRunResult(executed, pipeline.time, state, halted_by,
                                   pipeline)
