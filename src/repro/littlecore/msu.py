"""Mode Switch Unit (MSU, Fig. 4a).

The MSU is the little core's control engine: it tracks the core's
operational mode (application vs check), owns the recorded register
snapshot used by ``l.record``/``l.apply``, and arbitrates whether
memory accesses go to the D-cache (application mode) or the LSL
(check mode).  It also remembers which big-core hart the core is
hooked to (``b.hook``) and which thread ID owns the checker.
"""

import enum

from repro.common.errors import SimulationError


class Mode(enum.Enum):
    APPLICATION = 0
    CHECK = 1


class ModeSwitchUnit:
    """Per-little-core MSU state."""

    def __init__(self, core_id):
        self.core_id = core_id
        self.mode = Mode.APPLICATION
        self.hooked_big_core = None
        self.checker_tid = None
        self._recorded_registers = None
        self.mode_switches = 0

    def set_mode(self, mode):
        """``l.mode``: switch operational mode."""
        if not isinstance(mode, Mode):
            mode = Mode(mode)
        if mode != self.mode:
            self.mode_switches += 1
        self.mode = mode

    def hook(self, big_core_id):
        """``b.hook``: associate this little core with a big core."""
        self.hooked_big_core = big_core_id

    def unhook(self):
        self.hooked_big_core = None
        self.checker_tid = None

    @property
    def is_checking(self):
        return self.mode is Mode.CHECK

    def record_registers(self, snapshot):
        """``l.record``: stash the core's own architectural registers
        so it can return to the checker loop after verification."""
        self._recorded_registers = snapshot

    def recorded_registers(self):
        """``l.apply`` of the *recorded* set (checker-loop return path)."""
        if self._recorded_registers is None:
            raise SimulationError(
                f"little core {self.core_id}: l.apply before l.record")
        return self._recorded_registers

    def routes_to_lsl(self):
        """Whether memory accesses are steered to the LSL (Fig. 4b):
        only in check mode."""
        return self.mode is Mode.CHECK
