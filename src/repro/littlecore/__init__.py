"""The little core: a Rocket-class 5-stage in-order scalar core.

Upgraded per Sec. III-C with a Mode Switch Unit (MSU) that flips the
core between application and check mode, and a Load-Store Log (LSL)
port that replaces the D-cache during replay.  The timing model is an
in-order single-issue pipeline with full forwarding, a load-use bubble,
an iterative (configurably unrolled) divider that blocks its unit, a
configurable-depth FPU (blocking on the default Rocket, pipelined on
the optimized one), a taken-branch penalty and a real 4 KB I-cache.

All times are expressed in *big-core* cycles: the little core runs at
half the big core's frequency (Table II), so every little-core cycle
costs ``clock_ratio`` (= 2) big cycles.
"""

from repro.littlecore.msu import Mode, ModeSwitchUnit
from repro.littlecore.pipeline import LittleCorePipeline

__all__ = ["LittleCorePipeline", "Mode", "ModeSwitchUnit"]
