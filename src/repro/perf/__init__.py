"""Hot-path acceleration of the cycle kernel.

The simulator's inner loop used to pay for a full decode on every
committed instruction: :func:`repro.isa.semantics.execute` walks an
``if/elif`` chain of string compares for every op, three times per
instruction (vanilla big core, MEEK big core, checker replay).  This
package removes that tax without touching a single timing equation:

* :mod:`repro.perf.decode` — a decoded-instruction cache keyed by
  program identity.  Each :class:`~repro.isa.instructions.Instruction`
  is compiled once into a specialized closure that performs exactly the
  same architectural-state transition as ``execute`` (it reuses the
  same arithmetic helpers), so results are bit-identical while the
  per-instruction dispatch collapses to one function call.
* :mod:`repro.perf.cache` — the persistent compilation cache: every
  exec-compiled maker is memoized on disk (``~/.cache/repro``,
  ``$REPRO_CACHE_DIR``), fingerprinted by the generator sources, so
  each CLI invocation after the first starts warm.
* :mod:`repro.perf.service` — the warm-path execution service: one
  pre-warmed process context plus a persistent campaign worker pool
  shared by ``repro run``/``difftest``/``figure``/``batch``.
* :mod:`repro.perf.bench` — the ``repro bench`` suite: instructions
  per second for every execution system, wall time per figure driver,
  cold-vs-warm start, batch-mode and campaign-pool speedups, written
  to ``BENCH_perf.json``.
* :mod:`repro.perf.regress` — the benchmark-regression harness that
  compares a fresh ``BENCH_perf.json`` against the committed baseline
  with a configurable tolerance, so future PRs cannot silently give
  the speedup back.

Setting ``REPRO_SLOW_KERNEL=1`` in the environment keeps the naive
decode-every-tick loop available for A/B checking; the equivalence
suite (``tests/test_perf_equivalence.py``) runs every workload through
both kernels and asserts bit-identical cycles, state, and detection
latencies.
"""

from repro.perf.cache import disk_cache_enabled, stepper_cache
from repro.perf.decode import (DecodedProgram, compile_instruction,
                               decode_program, slow_kernel_enabled)

__all__ = [
    "DecodedProgram",
    "compile_instruction",
    "decode_program",
    "disk_cache_enabled",
    "slow_kernel_enabled",
    "stepper_cache",
]
