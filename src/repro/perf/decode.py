"""Decoded-instruction cache: per-program closure tables.

:func:`repro.isa.semantics.execute` is the single functional executor
shared by every model in the repository.  It is correct and readable —
and it re-derives everything about an instruction on every call: spec
lookups, an ``if/elif`` chain over the timing class, then a second
chain of string compares inside ``_int_alu``/``_branch_taken``/
``_exec_fp``.  On the hot path that decode work dominates the
simulation.

:func:`compile_instruction` performs that decode **once**, producing a
closure ``fn(state, mem_port, meek_handler) -> ExecResult`` that is
observably identical to ``execute(instr, state, mem_port,
meek_handler)``: same state mutations in the same order, same
:class:`~repro.isa.semantics.ExecResult` fields, same exceptions.  The
closures are ``exec``-generated from the per-op source fragments in
:mod:`repro.perf.ops` — the same single expression table the
specialized steppers in :mod:`repro.perf.jit` are assembled from —
plus a per-class ExecResult-assembly template, so the arithmetic
exists exactly once in the repository; the fragments reuse the
semantics module's own arithmetic helpers (``_div_signed``,
``_fp_div``, ...) so edge-case behavior is shared by construction,
not duplicated.  Compiled maker code objects are memoized on disk
through :mod:`repro.perf.cache`, so a fresh process starts warm.

:func:`decode_program` caches one closure table per
:class:`~repro.isa.program.Program`, keyed weakly by program identity,
so the big core, the checker replay, the golden model, and the Nzdc
baseline all hit the same decoded image.

``REPRO_SLOW_KERNEL=1`` disables the fast kernel everywhere
(:func:`slow_kernel_enabled`); the naive loop is kept alive precisely
so the differential equivalence suite can prove the two kernels
bit-identical.
"""

import os
import weakref

from repro.common.errors import PrivilegeError, SimulationError
from repro.isa.instructions import SPECS, InstrClass
from repro.isa.semantics import (ExecResult, _div_signed, _fcvt_l, _fp_div,
                                 _fp_sqrt, _rem_signed)
from repro.perf.cache import cached_compile
from repro.perf.ops import (exec_fragment, indent, mem_consts, trap_expr)
# One float codec for the whole repository: the pre-bound Structs live
# in isa.state, so the bit patterns here cannot drift from the
# interpreter's.
from repro.isa.state import bits_to_float as _b2f
from repro.isa.state import float_to_bits as _f2b

_WORD = (1 << 64) - 1
_SIGN = 1 << 63
_TWO64 = 1 << 64


def slow_kernel_enabled():
    """Whether ``REPRO_SLOW_KERNEL`` forces the naive decode-per-tick
    loop (the pre-optimization kernel, kept for A/B checking)."""
    return os.environ.get("REPRO_SLOW_KERNEL", "") not in ("", "0")


def _signed(value):
    return value - _TWO64 if value & _SIGN else value


# -- the exec-generating compiler --------------------------------------------
#
# One maker per op, source-assembled from ops.exec_fragment plus the
# per-class ExecResult-assembly template below, compiled once per
# process (and memoized on disk across processes).  Calling the maker
# with an instruction's decoded fields binds the constants and returns
# the drop-in ``fn`` closure.

_DECODE_GLOBALS = {
    "WORD": _WORD,
    "SGN": _signed,
    "B2F": _b2f,
    "F2B": _f2b,
    "DIVS": _div_signed,
    "REMS": _rem_signed,
    "FPDIV": _fp_div,
    "FPSQRT": _fp_sqrt,
    "FCVTL": _fcvt_l,
    "ExecResult": ExecResult,
    "PrivilegeError": PrivilegeError,
    "SimulationError": SimulationError,
}


def _result_src(op):
    """ExecResult-assembly source for ``op`` (runs after the fragment,
    which left ``next_pc`` and its class's locals defined)."""
    spec = SPECS[op]
    iclass = spec.iclass
    if iclass is InstrClass.LOAD:
        wrote = ("res.wrote_fp_rd = True" if spec.writes_fp_rd
                 else "res.wrote_int_rd = True")
        return ("res = ExecResult(next_pc)\n"
                "res.is_load = True\n"
                "res.mem_addr = addr\n"
                "res.mem_size = MEM_SIZE\n"
                "unsigned = value & WORD\n"
                "res.mem_value = unsigned\n"
                f"{wrote}\n"
                "res.rd_value = unsigned")
    if iclass is InstrClass.STORE:
        return ("res = ExecResult(next_pc)\n"
                "res.is_store = True\n"
                "res.mem_addr = addr\n"
                "res.mem_size = MEM_SIZE\n"
                "res.mem_value = value & MEM_MASK")
    if iclass is InstrClass.BRANCH:
        return ("res = ExecResult(next_pc)\n"
                "res.taken = taken")
    if iclass is InstrClass.JUMP:
        return ("res = ExecResult(next_pc)\n"
                "res.taken = True\n"
                "res.wrote_int_rd = WROTE\n"
                "res.rd_value = link")
    if iclass is InstrClass.CSR:
        return ("res = ExecResult(next_pc)\n"
                "res.csr_addr = IMM\n"
                "res.csr_value = new\n"
                "res.wrote_int_rd = WROTE\n"
                "res.rd_value = old")
    if iclass is InstrClass.SYSTEM:
        return ("res = ExecResult(next_pc)\n"
                f"res.trap = {trap_expr(op)}")
    if iclass is InstrClass.MEEK:
        return ("res = ExecResult(next_pc)\n"
                f"res.meek_op = {op!r}\n"
                "res.taken = taken")
    if spec.writes_fp_rd:
        # FP arithmetic writing an FP destination.
        return ("res = ExecResult(next_pc)\n"
                "res.wrote_fp_rd = True\n"
                "res.rd_value = value")
    # Integer-writing ops: ALU/MUL/DIV and the FP compares/moves.
    return ("res = ExecResult(next_pc)\n"
            "res.wrote_int_rd = True\n"
            "res.rd_value = value")


def _build_decode_source(op):
    iclass = SPECS[op].iclass
    port_lines = ""
    if iclass is InstrClass.LOAD:
        port_lines = ("        port = mem if mem is not None "
                      "else state.memory\n"
                      "        LOADFN = port.load\n")
    elif iclass is InstrClass.STORE:
        port_lines = ("        port = mem if mem is not None "
                      "else state.memory\n"
                      "        STOREFN = port.store\n")
    return f"""\
def maker(RD, RS1, RS2, IMM, OP_INSTR):
    UIMM = IMM & WORD
    IMM12 = IMM << 12
    LUI_VALUE = (IMM << 12) & WORD
    WROTE = RD != 0
{mem_consts(op)}\
    def fn(state, mem, MH):
        regs = state.int_regs
        fregs = state.fp_regs
        pc = state.pc
{port_lines}{indent(exec_fragment(op, mem_mode="direct"), 8)}
{indent(_result_src(op), 8)}
        state.pc = next_pc
        return res
    return fn
"""


_decode_makers = {}


def _decode_maker(op):
    maker = _decode_makers.get(op)
    if maker is None:
        code = cached_compile(f"decode:{op}",
                              lambda: _build_decode_source(op),
                              f"<repro.perf.decode:{op}>")
        namespace = dict(_DECODE_GLOBALS)
        exec(code, namespace)
        maker = namespace["maker"]
        _decode_makers[op] = maker
    return maker


def compile_instruction(instr):
    """Compile ``instr`` into ``fn(state, mem_port, meek_handler)``.

    The closure is a drop-in replacement for
    ``execute(instr, state, mem_port, meek_handler)``.
    """
    return _decode_maker(instr.op)(instr.rd, instr.rs1, instr.rs2,
                                   instr.imm, instr)


# -- decoded programs --------------------------------------------------------

#: Stable small-integer index per timing class, so hot loops can use
#: list indexing instead of hashing enum members.
CLASS_LIST = tuple(InstrClass)
CLASS_INDEX = {cls: i for i, cls in enumerate(CLASS_LIST)}


class DecodedInstr:
    """One instruction's precomputed hot-path facts."""

    __slots__ = ("instr", "fn", "iclass", "needs_entry")

    def __init__(self, instr):
        self.instr = instr
        self.fn = compile_instruction(instr)
        self.iclass = instr.spec.iclass
        self.needs_entry = self.iclass in (InstrClass.LOAD, InstrClass.STORE,
                                           InstrClass.CSR)


class DecodedProgram:
    """Closure table for one :class:`~repro.isa.program.Program`.

    :meth:`lookup` has exactly the contract of ``Program.fetch``:
    ``None`` past the end, :class:`SimulationError` on a misaligned or
    negative address — so the checker's ``pc-misaligned`` /
    ``pc-out-of-program`` detections behave identically on both
    kernels.
    """

    __slots__ = ("base", "entries", "_n", "_source")

    def __init__(self, program):
        self.base = program.base
        self._source = program.instructions
        self.entries = [DecodedInstr(instr) for instr in program.instructions]
        self._n = len(self.entries)

    def stale_for(self, program):
        """Whether the program's instruction list changed under us."""
        return (self._source is not program.instructions
                or self._n != len(program.instructions))

    def lookup(self, pc):
        offset = pc - self.base
        if offset < 0 or offset & 3:
            raise SimulationError(f"bad fetch address {pc:#x} "
                                  f"(base {self.base:#x})")
        index = offset >> 2
        if index >= self._n:
            return None
        return self.entries[index]


_decoded_cache = weakref.WeakKeyDictionary()


def decode_program(program):
    """The cached :class:`DecodedProgram` for ``program``.

    Keyed by program identity (weakly, so decoded images die with
    their programs).  A program whose ``instructions`` list was swapped
    out after decoding is re-decoded rather than served stale.
    """
    cached = _decoded_cache.get(program)
    if cached is None or cached.stale_for(program):
        cached = DecodedProgram(program)
        _decoded_cache[program] = cached
    return cached
