"""Decoded-instruction cache: per-program closure tables.

:func:`repro.isa.semantics.execute` is the single functional executor
shared by every model in the repository.  It is correct and readable —
and it re-derives everything about an instruction on every call: spec
lookups, an ``if/elif`` chain over the timing class, then a second
chain of string compares inside ``_int_alu``/``_branch_taken``/
``_exec_fp``.  On the hot path that decode work dominates the
simulation.

:func:`compile_instruction` performs that decode **once**, producing a
closure ``fn(state, mem_port, meek_handler) -> ExecResult`` that is
observably identical to ``execute(instr, state, mem_port,
meek_handler)``: same state mutations in the same order, same
:class:`~repro.isa.semantics.ExecResult` fields, same exceptions.  The
closures reuse the semantics module's own arithmetic helpers
(``_div_signed``, ``_fp_div``, ...) so edge-case behavior is shared by
construction, not duplicated.

:func:`decode_program` caches one closure table per
:class:`~repro.isa.program.Program`, keyed weakly by program identity,
so the big core, the checker replay, the golden model, and the Nzdc
baseline all hit the same decoded image.

``REPRO_SLOW_KERNEL=1`` disables the fast kernel everywhere
(:func:`slow_kernel_enabled`); the naive loop is kept alive precisely
so the differential equivalence suite can prove the two kernels
bit-identical.
"""

import os
import weakref

from repro.common.errors import PrivilegeError, SimulationError
from repro.isa.instructions import InstrClass
from repro.isa.semantics import (ExecResult, _LOAD_SIZES, _STORE_SIZES,
                                 _div_signed, _fcvt_l, _fp_div, _fp_sqrt,
                                 _rem_signed)
# One float codec for the whole repository: the pre-bound Structs live
# in isa.state, so the bit patterns here cannot drift from the
# interpreter's.
from repro.isa.state import bits_to_float as _b2f
from repro.isa.state import float_to_bits as _f2b

_WORD = (1 << 64) - 1
_SIGN = 1 << 63
_TWO64 = 1 << 64


def slow_kernel_enabled():
    """Whether ``REPRO_SLOW_KERNEL`` forces the naive decode-per-tick
    loop (the pre-optimization kernel, kept for A/B checking)."""
    return os.environ.get("REPRO_SLOW_KERNEL", "") not in ("", "0")


def _signed(value):
    return value - _TWO64 if value & _SIGN else value


# -- per-op value closures ---------------------------------------------------
#
# Each maker captures the decoded register indices / immediate and
# returns ``fn(regs, pc) -> value`` mirroring one branch of
# ``semantics._int_alu`` exactly (including which results are masked).

def _alu_value_maker(op, rs1, rs2, imm):
    if op == "add":
        return lambda regs, pc: (regs[rs1] + regs[rs2]) & _WORD
    if op == "addi":
        return lambda regs, pc: (regs[rs1] + imm) & _WORD
    if op == "sub":
        return lambda regs, pc: (regs[rs1] - regs[rs2]) & _WORD
    if op == "and":
        return lambda regs, pc: regs[rs1] & regs[rs2]
    if op == "andi":
        uimm = imm & _WORD
        return lambda regs, pc: regs[rs1] & uimm
    if op == "or":
        return lambda regs, pc: regs[rs1] | regs[rs2]
    if op == "ori":
        uimm = imm & _WORD
        return lambda regs, pc: regs[rs1] | uimm
    if op == "xor":
        return lambda regs, pc: regs[rs1] ^ regs[rs2]
    if op == "xori":
        uimm = imm & _WORD
        return lambda regs, pc: regs[rs1] ^ uimm
    if op == "sll":
        return lambda regs, pc: (regs[rs1] << (regs[rs2] & 0x3F)) & _WORD
    if op == "slli":
        return lambda regs, pc: (regs[rs1] << imm) & _WORD
    if op == "srl":
        return lambda regs, pc: regs[rs1] >> (regs[rs2] & 0x3F)
    if op == "srli":
        return lambda regs, pc: regs[rs1] >> imm
    if op == "sra":
        return lambda regs, pc: (
            _signed(regs[rs1]) >> (regs[rs2] & 0x3F)) & _WORD
    if op == "srai":
        return lambda regs, pc: (_signed(regs[rs1]) >> imm) & _WORD
    if op == "slt":
        return lambda regs, pc: (
            1 if _signed(regs[rs1]) < _signed(regs[rs2]) else 0)
    if op == "slti":
        return lambda regs, pc: 1 if _signed(regs[rs1]) < imm else 0
    if op == "sltu":
        return lambda regs, pc: 1 if regs[rs1] < regs[rs2] else 0
    if op == "sltiu":
        uimm = imm & _WORD
        return lambda regs, pc: 1 if regs[rs1] < uimm else 0
    if op == "lui":
        value = (imm << 12) & _WORD
        return lambda regs, pc: value
    if op == "auipc":
        imm12 = imm << 12
        return lambda regs, pc: (pc + imm12) & _WORD
    if op == "mul":
        return lambda regs, pc: (regs[rs1] * regs[rs2]) & _WORD
    if op == "mulh":
        return lambda regs, pc: (
            (_signed(regs[rs1]) * _signed(regs[rs2])) >> 64) & _WORD
    raise SimulationError(f"no ALU semantics for {op!r}")


def _div_value_maker(op, rs1, rs2):
    if op == "div":
        return lambda regs: _div_signed(_signed(regs[rs1]),
                                        _signed(regs[rs2])) & _WORD
    if op == "divu":
        return lambda regs: (regs[rs1] // regs[rs2]) if regs[rs2] else _WORD
    if op == "rem":
        return lambda regs: _rem_signed(_signed(regs[rs1]),
                                        _signed(regs[rs2])) & _WORD
    if op == "remu":
        return lambda regs: (regs[rs1] % regs[rs2]) if regs[rs2] \
            else regs[rs1]
    raise SimulationError(f"no divide semantics for {op!r}")


def _branch_taken_maker(op, rs1, rs2):
    if op == "beq":
        return lambda regs: regs[rs1] == regs[rs2]
    if op == "bne":
        return lambda regs: regs[rs1] != regs[rs2]
    if op == "blt":
        return lambda regs: _signed(regs[rs1]) < _signed(regs[rs2])
    if op == "bge":
        return lambda regs: _signed(regs[rs1]) >= _signed(regs[rs2])
    if op == "bltu":
        return lambda regs: regs[rs1] < regs[rs2]
    if op == "bgeu":
        return lambda regs: regs[rs1] >= regs[rs2]
    raise SimulationError(f"no branch semantics for {op!r}")


# -- the compiler ------------------------------------------------------------

def compile_instruction(instr):
    """Compile ``instr`` into ``fn(state, mem_port, meek_handler)``.

    The closure is a drop-in replacement for
    ``execute(instr, state, mem_port, meek_handler)``.
    """
    op = instr.op
    spec = instr.spec
    iclass = spec.iclass
    rd = instr.rd
    rs1 = instr.rs1
    rs2 = instr.rs2
    imm = instr.imm

    if iclass is InstrClass.ALU or iclass is InstrClass.MUL:
        value_of = _alu_value_maker(op, rs1, rs2, imm)

        def fn(state, mem, mh):
            pc = state.pc
            value = value_of(state.int_regs, pc)
            res = ExecResult(pc + 4)
            if rd:
                state.int_regs[rd] = value & _WORD
            res.rd_value = value
            res.wrote_int_rd = True
            state.pc = res.next_pc
            return res
        return fn

    if iclass is InstrClass.DIV:
        value_of = _div_value_maker(op, rs1, rs2)

        def fn(state, mem, mh):
            value = value_of(state.int_regs)
            res = ExecResult(state.pc + 4)
            if rd:
                state.int_regs[rd] = value & _WORD
            res.rd_value = value
            res.wrote_int_rd = True
            state.pc = res.next_pc
            return res
        return fn

    if iclass is InstrClass.LOAD:
        size, load_signed = _LOAD_SIZES[op]
        writes_fp = spec.writes_fp_rd

        def fn(state, mem, mh):
            regs = state.int_regs
            addr = (regs[rs1] + imm) & _WORD
            port = mem if mem is not None else state.memory
            value = port.load(addr, size, signed=load_signed)
            res = ExecResult(state.pc + 4)
            res.is_load = True
            res.mem_addr = addr
            res.mem_size = size
            unsigned = value & _WORD
            res.mem_value = unsigned
            if writes_fp:
                state.fp_regs[rd] = unsigned
                res.wrote_fp_rd = True
            else:
                if rd:
                    regs[rd] = unsigned
                res.wrote_int_rd = True
            res.rd_value = unsigned
            state.pc = res.next_pc
            return res
        return fn

    if iclass is InstrClass.STORE:
        size = _STORE_SIZES[op]
        reads_fp = spec.reads_fp_rs2
        size_mask = (1 << (size * 8)) - 1

        def fn(state, mem, mh):
            regs = state.int_regs
            addr = (regs[rs1] + imm) & _WORD
            value = state.fp_regs[rs2] if reads_fp else regs[rs2]
            port = mem if mem is not None else state.memory
            port.store(addr, value, size)
            res = ExecResult(state.pc + 4)
            res.is_store = True
            res.mem_addr = addr
            res.mem_size = size
            res.mem_value = value & size_mask
            state.pc = res.next_pc
            return res
        return fn

    if iclass is InstrClass.BRANCH:
        taken_of = _branch_taken_maker(op, rs1, rs2)

        def fn(state, mem, mh):
            pc = state.pc
            res = ExecResult(pc + 4)
            if taken_of(state.int_regs):
                res.taken = True
                res.next_pc = (pc + imm) & _WORD
            state.pc = res.next_pc
            return res
        return fn

    if iclass is InstrClass.JUMP:
        wrote = rd != 0
        if op == "jal":
            def fn(state, mem, mh):
                pc = state.pc
                link = (pc + 4) & _WORD
                if rd:
                    state.int_regs[rd] = link
                res = ExecResult((pc + imm) & _WORD)
                res.taken = True
                res.wrote_int_rd = wrote
                res.rd_value = link
                state.pc = res.next_pc
                return res
        else:  # jalr
            def fn(state, mem, mh):
                pc = state.pc
                regs = state.int_regs
                target = (regs[rs1] + imm) & ~1 & _WORD
                link = (pc + 4) & _WORD
                if rd:
                    regs[rd] = link
                res = ExecResult(target)
                res.taken = True
                res.wrote_int_rd = wrote
                res.rd_value = link
                state.pc = res.next_pc
                return res
        return fn

    if iclass is InstrClass.CSR:
        wrote = rd != 0

        def fn(state, mem, mh):
            res = ExecResult(state.pc + 4)
            res.csr_addr = imm
            csrs = state.csrs
            old = csrs.get(imm, 0)
            if op == "csrrw":
                new = state.int_regs[rs1]
            elif op == "csrrs":
                new = old | state.int_regs[rs1]
            else:  # csrrwi: rs1 field is the zero-extended immediate
                new = rs1
            csrs[imm] = new & _WORD
            res.csr_value = new
            if rd:
                state.int_regs[rd] = old & _WORD
            res.wrote_int_rd = wrote
            res.rd_value = old
            state.pc = res.next_pc
            return res
        return fn

    if iclass is InstrClass.FP or iclass is InstrClass.FPDIV:
        return _compile_fp(op, rd, rs1, rs2)

    if iclass is InstrClass.SYSTEM:
        trap = op if op in ("ecall", "ebreak") else None

        def fn(state, mem, mh):
            res = ExecResult(state.pc + 4)
            res.trap = trap
            state.pc = res.next_pc
            return res
        return fn

    if iclass is InstrClass.MEEK:
        privileged = spec.privileged

        def fn(state, mem, mh):
            if privileged and not state.priv_kernel:
                raise PrivilegeError(
                    f"{op} is a kernel-mode instruction (Table I, Priv 1)")
            res = ExecResult(state.pc + 4)
            res.meek_op = op
            if mh is not None:
                override = mh(instr, state)
                if override is not None:
                    res.next_pc = override & _WORD
                    res.taken = True
            state.pc = res.next_pc
            return res
        return fn

    raise SimulationError(f"no semantics for class {iclass}")


def _fp_result(state, rd, value):
    """Shared tail of an FP-register-writing op (mirrors the fallthrough
    at the bottom of ``semantics._exec_fp``)."""
    res = ExecResult(state.pc + 4)
    state.fp_regs[rd] = value & _WORD
    res.wrote_fp_rd = True
    res.rd_value = value
    state.pc = res.next_pc
    return res


def _int_result(state, rd, value):
    """Shared tail of the FP ops that write an integer register."""
    res = ExecResult(state.pc + 4)
    if rd:
        state.int_regs[rd] = value & _WORD
    res.wrote_int_rd = True
    res.rd_value = value
    state.pc = res.next_pc
    return res


def _compile_fp(op, rd, rs1, rs2):
    if op == "fadd.d":
        def fn(state, mem, mh):
            fp = state.fp_regs
            return _fp_result(state, rd, _f2b(_b2f(fp[rs1]) + _b2f(fp[rs2])))
        return fn
    if op == "fsub.d":
        def fn(state, mem, mh):
            fp = state.fp_regs
            return _fp_result(state, rd, _f2b(_b2f(fp[rs1]) - _b2f(fp[rs2])))
        return fn
    if op == "fmul.d":
        def fn(state, mem, mh):
            fp = state.fp_regs
            f1 = _b2f(fp[rs1])
            f2 = _b2f(fp[rs2])
            try:
                value = _f2b(f1 * f2)
            except OverflowError:
                value = _f2b(float("inf") if (f1 > 0) == (f2 > 0)
                             else float("-inf"))
            return _fp_result(state, rd, value)
        return fn
    if op == "fdiv.d":
        def fn(state, mem, mh):
            fp = state.fp_regs
            return _fp_result(
                state, rd, _f2b(_fp_div(_b2f(fp[rs1]), _b2f(fp[rs2]))))
        return fn
    if op == "fsqrt.d":
        def fn(state, mem, mh):
            return _fp_result(
                state, rd, _f2b(_fp_sqrt(_b2f(state.fp_regs[rs1]))))
        return fn
    if op == "fmin.d":
        def fn(state, mem, mh):
            fp = state.fp_regs
            return _fp_result(
                state, rd, _f2b(min(_b2f(fp[rs1]), _b2f(fp[rs2]))))
        return fn
    if op == "fmax.d":
        def fn(state, mem, mh):
            fp = state.fp_regs
            return _fp_result(
                state, rd, _f2b(max(_b2f(fp[rs1]), _b2f(fp[rs2]))))
        return fn
    if op == "fmv.d.x":
        def fn(state, mem, mh):
            return _fp_result(state, rd, state.int_regs[rs1])
        return fn
    if op == "fcvt.d.l":
        def fn(state, mem, mh):
            return _fp_result(
                state, rd, _f2b(float(_signed(state.int_regs[rs1]))))
        return fn
    if op in ("feq.d", "flt.d", "fle.d"):
        def fn(state, mem, mh):
            fp = state.fp_regs
            f1 = _b2f(fp[rs1])
            f2 = _b2f(fp[rs2])
            if f1 != f1 or f2 != f2:
                result = 0
            elif op == "feq.d":
                result = 1 if f1 == f2 else 0
            elif op == "flt.d":
                result = 1 if f1 < f2 else 0
            else:
                result = 1 if f1 <= f2 else 0
            return _int_result(state, rd, result)
        return fn
    if op == "fmv.x.d":
        def fn(state, mem, mh):
            return _int_result(state, rd, state.fp_regs[rs1])
        return fn
    if op == "fcvt.l.d":
        def fn(state, mem, mh):
            return _int_result(
                state, rd, _fcvt_l(_b2f(state.fp_regs[rs1])) & _WORD)
        return fn
    raise SimulationError(f"no FP semantics for {op!r}")


# -- decoded programs --------------------------------------------------------

#: Stable small-integer index per timing class, so hot loops can use
#: list indexing instead of hashing enum members.
CLASS_LIST = tuple(InstrClass)
CLASS_INDEX = {cls: i for i, cls in enumerate(CLASS_LIST)}


class DecodedInstr:
    """One instruction's precomputed hot-path facts."""

    __slots__ = ("instr", "fn", "iclass", "needs_entry")

    def __init__(self, instr):
        self.instr = instr
        self.fn = compile_instruction(instr)
        self.iclass = instr.spec.iclass
        self.needs_entry = self.iclass in (InstrClass.LOAD, InstrClass.STORE,
                                           InstrClass.CSR)


class DecodedProgram:
    """Closure table for one :class:`~repro.isa.program.Program`.

    :meth:`lookup` has exactly the contract of ``Program.fetch``:
    ``None`` past the end, :class:`SimulationError` on a misaligned or
    negative address — so the checker's ``pc-misaligned`` /
    ``pc-out-of-program`` detections behave identically on both
    kernels.
    """

    __slots__ = ("base", "entries", "_n", "_source")

    def __init__(self, program):
        self.base = program.base
        self._source = program.instructions
        self.entries = [DecodedInstr(instr) for instr in program.instructions]
        self._n = len(self.entries)

    def stale_for(self, program):
        """Whether the program's instruction list changed under us."""
        return (self._source is not program.instructions
                or self._n != len(program.instructions))

    def lookup(self, pc):
        offset = pc - self.base
        if offset < 0 or offset & 3:
            raise SimulationError(f"bad fetch address {pc:#x} "
                                  f"(base {self.base:#x})")
        index = offset >> 2
        if index >= self._n:
            return None
        return self.entries[index]


_decoded_cache = weakref.WeakKeyDictionary()


def decode_program(program):
    """The cached :class:`DecodedProgram` for ``program``.

    Keyed by program identity (weakly, so decoded images die with
    their programs).  A program whose ``instructions`` list was swapped
    out after decoding is re-decoded rather than served stale.
    """
    cached = _decoded_cache.get(program)
    if cached is None or cached.stale_for(program):
        cached = DecodedProgram(program)
        _decoded_cache[program] = cached
    return cached
