"""Per-op source fragments for the specialized steppers.

:mod:`repro.perf.jit` assembles each fragment into a step function and
``exec``-compiles it once per process, so the hot loops run straight-
line bytecode with the operation's arithmetic inlined and every decode
decision already taken.

A fragment is Python source with these names in scope:

* ``pc`` — the instruction's PC (int, local);
* ``regs`` / ``fregs`` — the integer / FP register lists;
* ``state`` — the :class:`~repro.isa.state.ArchState` (for CSRs,
  privilege, and the MEEK handler);
* ``RD``, ``RS1``, ``RS2``, ``IMM``, ``UIMM`` (= ``IMM & WORD``),
  ``OP_INSTR`` (the decoded Instruction), ``MH`` (meek handler) —
  per-instruction constants bound as closure freevars;
* ``WORD`` (2**64-1), ``SIGN`` (2**63), ``TWO64`` (2**64) and the
  helper functions ``B2F``/``F2B``/``SGN``/``DIVS``/``REMS``/
  ``FPDIV``/``FPSQRT``/``FCVTL`` plus ``PrivilegeError``;
* memory ports: ``LOADFN``/``STOREFN`` (bound ``Memory.load``/
  ``Memory.store``) in the big-core/golden steppers.

Every fragment must leave ``next_pc`` defined and mirror
:func:`repro.isa.semantics.execute` bit for bit — including *which*
results are masked and the order of register reads vs. writes.  This
table is the **single** per-op expression source in the repository:
:mod:`repro.perf.decode` exec-generates its ExecResult-returning
closures from the same fragments (plus a result-assembly template),
so the arithmetic cannot drift between the two compilers, and the
equivalence suite proves both identical to the interpreted executor.

Mem-op fragments additionally define ``addr`` (and stores ``value``)
for the timing model; branch fragments define ``taken``.
"""

from repro.isa.instructions import SPECS, InstrClass
from repro.isa.semantics import _LOAD_SIZES, _STORE_SIZES


def indent(src, spaces):
    """Indent a fragment for splicing into a generated function."""
    pad = " " * spaces
    return "\n".join(pad + line if line.strip() else line
                     for line in src.splitlines())


def mem_consts(op, pad=4):
    """Source lines binding the op's memory constants, or ``''``."""
    prefix = " " * pad
    if op in _LOAD_SIZES:
        size, signed = _LOAD_SIZES[op]
        return (f"{prefix}MEM_SIZE = {size}\n"
                f"{prefix}MEM_SIGNED = {signed}\n"
                f"{prefix}MEM_MASK = {(1 << (size * 8)) - 1}\n")
    if op in _STORE_SIZES:
        size = _STORE_SIZES[op]
        return (f"{prefix}MEM_SIZE = {size}\n"
                f"{prefix}MEM_MASK = {(1 << (size * 8)) - 1}\n")
    return ""

#: Ops whose fragment writes an integer destination computed into
#: ``value`` (the shared "write rd" tail is appended by the template).
_INT_VALUE_EXPRS = {
    "add": "value = (regs[RS1] + regs[RS2]) & WORD",
    "addi": "value = (regs[RS1] + IMM) & WORD",
    "sub": "value = (regs[RS1] - regs[RS2]) & WORD",
    "and": "value = regs[RS1] & regs[RS2]",
    "andi": "value = regs[RS1] & UIMM",
    "or": "value = regs[RS1] | regs[RS2]",
    "ori": "value = regs[RS1] | UIMM",
    "xor": "value = regs[RS1] ^ regs[RS2]",
    "xori": "value = regs[RS1] ^ UIMM",
    "sll": "value = (regs[RS1] << (regs[RS2] & 0x3F)) & WORD",
    "slli": "value = (regs[RS1] << IMM) & WORD",
    "srl": "value = regs[RS1] >> (regs[RS2] & 0x3F)",
    "srli": "value = regs[RS1] >> IMM",
    "sra": "value = (SGN(regs[RS1]) >> (regs[RS2] & 0x3F)) & WORD",
    "srai": "value = (SGN(regs[RS1]) >> IMM) & WORD",
    "slt": "value = 1 if SGN(regs[RS1]) < SGN(regs[RS2]) else 0",
    "slti": "value = 1 if SGN(regs[RS1]) < IMM else 0",
    "sltu": "value = 1 if regs[RS1] < regs[RS2] else 0",
    "sltiu": "value = 1 if regs[RS1] < UIMM else 0",
    "lui": "value = LUI_VALUE",
    "auipc": "value = (pc + IMM12) & WORD",
    "mul": "value = (regs[RS1] * regs[RS2]) & WORD",
    "mulh": "value = ((SGN(regs[RS1]) * SGN(regs[RS2])) >> 64) & WORD",
    "div": "value = DIVS(SGN(regs[RS1]), SGN(regs[RS2])) & WORD",
    "divu": "value = (regs[RS1] // regs[RS2]) if regs[RS2] else WORD",
    "rem": "value = REMS(SGN(regs[RS1]), SGN(regs[RS2])) & WORD",
    "remu": "value = (regs[RS1] % regs[RS2]) if regs[RS2] else regs[RS1]",
}

#: FP ops whose fragment computes a raw-bits ``value`` written to the
#: FP destination register.
_FP_VALUE_EXPRS = {
    "fadd.d": "value = F2B(B2F(fregs[RS1]) + B2F(fregs[RS2]))",
    "fsub.d": "value = F2B(B2F(fregs[RS1]) - B2F(fregs[RS2]))",
    "fdiv.d": "value = F2B(FPDIV(B2F(fregs[RS1]), B2F(fregs[RS2])))",
    "fsqrt.d": "value = F2B(FPSQRT(B2F(fregs[RS1])))",
    "fmin.d": "value = F2B(min(B2F(fregs[RS1]), B2F(fregs[RS2])))",
    "fmax.d": "value = F2B(max(B2F(fregs[RS1]), B2F(fregs[RS2])))",
    "fmv.d.x": "value = regs[RS1]",
    "fcvt.d.l": "value = F2B(float(SGN(regs[RS1])))",
}

_FMUL_SRC = """\
f1 = B2F(fregs[RS1])
f2 = B2F(fregs[RS2])
try:
    value = F2B(f1 * f2)
except OverflowError:
    value = F2B(float("inf") if (f1 > 0) == (f2 > 0) else float("-inf"))"""

#: FP compares / moves that write an integer register.
_FP_TO_INT_SRCS = {
    "feq.d": """\
f1 = B2F(fregs[RS1])
f2 = B2F(fregs[RS2])
value = 0 if (f1 != f1 or f2 != f2) else (1 if f1 == f2 else 0)""",
    "flt.d": """\
f1 = B2F(fregs[RS1])
f2 = B2F(fregs[RS2])
value = 0 if (f1 != f1 or f2 != f2) else (1 if f1 < f2 else 0)""",
    "fle.d": """\
f1 = B2F(fregs[RS1])
f2 = B2F(fregs[RS2])
value = 0 if (f1 != f1 or f2 != f2) else (1 if f1 <= f2 else 0)""",
    "fmv.x.d": "value = fregs[RS1]",
    "fcvt.l.d": "value = FCVTL(B2F(fregs[RS1])) & WORD",
}

_BRANCH_CONDS = {
    "beq": "regs[RS1] == regs[RS2]",
    "bne": "regs[RS1] != regs[RS2]",
    "blt": "SGN(regs[RS1]) < SGN(regs[RS2])",
    "bge": "SGN(regs[RS1]) >= SGN(regs[RS2])",
    "bltu": "regs[RS1] < regs[RS2]",
    "bgeu": "regs[RS1] >= regs[RS2]",
}

_CSR_NEW_EXPRS = {
    "csrrw": "new = regs[RS1]",
    "csrrs": "new = old | regs[RS1]",
    "csrrwi": "new = RS1",
}


def exec_fragment(op, mem_mode="direct"):
    """The execution source fragment for ``op``.

    ``mem_mode`` selects how loads/stores touch memory:

    * ``"direct"`` — through ``LOADFN``/``STOREFN`` (big core, golden);
    * ``"replay"`` — against the current LSL ``entry`` (checker), with
      the same comparisons :class:`repro.core.checker._LslPort` makes
      and a ``mismatch`` local carrying any detection.

    The fragment always defines ``next_pc``; mem fragments define
    ``addr``; branches define ``taken``.
    """
    spec = SPECS[op]
    iclass = spec.iclass

    if op in _INT_VALUE_EXPRS:
        return (f"{_INT_VALUE_EXPRS[op]}\n"
                "next_pc = pc + 4\n"
                "if RD:\n    regs[RD] = value & WORD")

    if op in _FP_VALUE_EXPRS or op == "fmul.d":
        src = _FMUL_SRC if op == "fmul.d" else _FP_VALUE_EXPRS[op]
        return (f"{src}\n"
                "next_pc = pc + 4\n"
                "fregs[RD] = value & WORD")

    if op in _FP_TO_INT_SRCS:
        return (f"{_FP_TO_INT_SRCS[op]}\n"
                "next_pc = pc + 4\n"
                "if RD:\n    regs[RD] = value & WORD")

    if iclass is InstrClass.LOAD:
        if mem_mode == "replay":
            head = ("addr = (regs[RS1] + IMM) & WORD\n"
                    "if entry.rkind is not RK_LOAD:\n"
                    "    mismatch = 'lsl-kind-mismatch-on-load'\n"
                    "elif entry.addr != addr or entry.size != MEM_SIZE:\n"
                    "    mismatch = 'load-address-mismatch'\n"
                    "value = entry.data\n")
        else:
            head = ("addr = (regs[RS1] + IMM) & WORD\n"
                    "value = LOADFN(addr, MEM_SIZE, signed=MEM_SIGNED)\n")
        if spec.writes_fp_rd:
            tail = "fregs[RD] = value & WORD\n"
        else:
            tail = "if RD:\n    regs[RD] = value & WORD\n"
        return head + "next_pc = pc + 4\n" + tail

    if iclass is InstrClass.STORE:
        value = "fregs[RS2]" if spec.reads_fp_rs2 else "regs[RS2]"
        if mem_mode == "replay":
            body = (f"value = {value}\n"
                    "if entry.rkind is not RK_STORE:\n"
                    "    mismatch = 'lsl-kind-mismatch-on-store'\n"
                    "elif entry.addr != addr or entry.size != MEM_SIZE:\n"
                    "    mismatch = 'store-address-mismatch'\n"
                    "elif (value & MEM_MASK) != entry.data:\n"
                    "    mismatch = 'store-data-mismatch'\n")
        else:
            body = (f"value = {value}\n"
                    "STOREFN(addr, value, MEM_SIZE)\n")
        return ("addr = (regs[RS1] + IMM) & WORD\n"
                + body + "next_pc = pc + 4\n")

    if iclass is InstrClass.BRANCH:
        return (f"if {_BRANCH_CONDS[op]}:\n"
                "    taken = True\n"
                "    next_pc = (pc + IMM) & WORD\n"
                "else:\n"
                "    taken = False\n"
                "    next_pc = pc + 4\n")

    if op == "jal":
        return ("link = (pc + 4) & WORD\n"
                "if RD:\n    regs[RD] = link\n"
                "next_pc = (pc + IMM) & WORD\n")
    if op == "jalr":
        return ("next_pc = (regs[RS1] + IMM) & ~1 & WORD\n"
                "link = (pc + 4) & WORD\n"
                "if RD:\n    regs[RD] = link\n")

    if iclass is InstrClass.CSR:
        return ("csrs = state.csrs\n"
                "old = csrs.get(IMM, 0)\n"
                f"{_CSR_NEW_EXPRS[op]}\n"
                "csrs[IMM] = new & WORD\n"
                "if RD:\n    regs[RD] = old & WORD\n"
                "next_pc = pc + 4\n")

    if iclass is InstrClass.SYSTEM:
        return "next_pc = pc + 4\n"

    if iclass is InstrClass.MEEK:
        priv = ""
        if spec.privileged:
            priv = ("if not state.priv_kernel:\n"
                    "    raise PrivilegeError(\n"
                    f"        \"{op} is a kernel-mode instruction "
                    "(Table I, Priv 1)\")\n")
        return (priv
                + "next_pc = pc + 4\n"
                "taken = False\n"
                "if MH is not None:\n"
                "    override = MH(OP_INSTR, state)\n"
                "    if override is not None:\n"
                "        next_pc = override & WORD\n"
                "        taken = True\n")

    raise KeyError(f"no fragment for op {op!r}")


def trap_expr(op):
    """Source expression for the step's return value (the trap)."""
    if op in ("ecall", "ebreak"):
        return f"'{op}'"
    return "None"
