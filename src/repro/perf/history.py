"""Benchmark trend history: BENCH runs as a time series.

``repro bench --check`` guards against *floor violations* — a binary
gate with a generous tolerance.  A slow bleed (each PR giving back 5%)
passes every individual check and still loses the speedup over a
quarter.  This module makes the trajectory itself visible:

* :func:`append_history` — after every bench run, one compact JSONL
  record (git SHA, timestamp, the regression-stable metrics) is
  appended to ``benchmarks/BENCH_history.jsonl``;
* :func:`format_trend` — ``repro bench --trend`` renders each
  metric's recorded trajectory as a sparkline plus first/last/delta,
  so a drift reads as a sagging line instead of a sequence of
  individually-acceptable checks;
* :func:`trend_violations` — the slope gate behind ``repro bench
  --trend``'s exit code: a metric whose fitted trailing-window slope
  loses more than the tolerance is a regression even though every
  individual run stayed above its floor.

Only ratio/throughput metrics are recorded — the same ones
:mod:`repro.perf.regress` floors — because they are what trends
meaningfully across commits.
"""

import json
import os
import subprocess

HISTORY_SCHEMA = 1

#: Default history file, colocated with the benchmark drivers.
DEFAULT_HISTORY_PATH = os.path.join("benchmarks", "BENCH_history.jsonl")

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def git_sha(cwd=None):
    """The current short commit SHA, or ``None`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=cwd,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            timeout=10.0)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.decode("ascii", "replace").strip() or None


def history_record(result, sha=None, unix=None):
    """Reduce one ``run_bench`` result to its trend-worthy metrics."""
    import time

    record = {
        "schema": HISTORY_SCHEMA,
        "unix": time.time() if unix is None else unix,
        "git_sha": sha,
        "config": {
            "instructions": result.get("config", {}).get("instructions"),
            "cores": result.get("config", {}).get("cores"),
        },
        "metrics": {},
    }
    metrics = record["metrics"]
    for workload, systems in (result.get("workloads") or {}).items():
        for system, values in systems.items():
            rate = values.get("instrs_per_s")
            if rate:
                metrics[f"{workload}/{system}/instrs_per_s"] = rate
    kernels = result.get("kernels") or {}
    for key in ("meek_speedup", "vanilla_speedup"):
        if kernels.get(key):
            metrics[f"kernels/{key}"] = kernels[key]
    for section, key in (("warm_start", "warm_speedup"),
                         ("batch", "batch_speedup"),
                         ("campaign", "pool_speedup"),
                         ("batch_kernel", "batch_speedup"),
                         ("batch_kernel", "batched_points_per_s")):
        value = (result.get(section) or {}).get(key)
        if value:
            metrics[f"{section}/{key}"] = value
    for figure, values in (result.get("figures") or {}).items():
        if values.get("wall_s"):
            metrics[f"figures/{figure}/wall_s"] = values["wall_s"]
    return record


def append_history(result, path=DEFAULT_HISTORY_PATH, sha=None):
    """Append one bench run to the history file; returns the record.

    Failures (read-only checkout, missing directory that cannot be
    created) are swallowed — history is observability, not a gate.
    """
    if sha is None:
        sha = git_sha()
    record = history_record(result, sha=sha)
    try:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    except OSError:
        return None
    return record


def load_history(path=DEFAULT_HISTORY_PATH):
    """All parseable history records, in file (= chronological) order."""
    records = []
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and "metrics" in record:
                    records.append(record)
    except OSError:
        pass
    return records


def sparkline(values):
    """``values`` as a block-character sparkline (min→max scaled)."""
    if not values:
        return ""
    low, high = min(values), max(values)
    if high <= low:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[round((value - low) / span * top)]
        for value in values)


def trend_violations(records, window=6, tolerance=0.15, min_runs=4):
    """Sustained-slope regressions across the trailing ``window`` runs.

    The floor check (:mod:`repro.perf.regress`) is a binary gate: a
    slow bleed of a few percent per commit passes every run.  This
    check catches the bleed itself — for each recorded higher-is-better
    metric (throughputs and speedup ratios; ``wall_s`` walls are
    excluded as lower-is-better and machine-noisy), a least-squares
    line is fitted over the trailing ``window`` values, and the fitted
    end-to-end decline relative to the window mean must stay within
    ``tolerance``.  Metrics with fewer than ``min_runs`` recorded runs
    are skipped — one noisy pair of runs is not a trend.

    Returns a list of dicts ``{"metric", "runs", "first", "latest",
    "fitted_decline"}``, empty when no slope regression.
    """
    series = {}
    for record in records:
        for metric, value in (record.get("metrics") or {}).items():
            if metric.endswith("/wall_s"):
                continue
            series.setdefault(metric, []).append(value)
    violations = []
    for metric, values in series.items():
        values = values[-window:]
        n = len(values)
        if n < min_runs:
            continue
        mean_value = sum(values) / n
        if mean_value <= 0:
            continue
        # Least-squares slope over run index 0..n-1.
        x_mean = (n - 1) / 2.0
        denom = sum((i - x_mean) ** 2 for i in range(n))
        slope = sum((i - x_mean) * (v - mean_value)
                    for i, v in enumerate(values)) / denom
        fitted_decline = -(slope * (n - 1)) / mean_value
        if fitted_decline > tolerance:
            violations.append({
                "metric": metric,
                "runs": n,
                "first": values[0],
                "latest": values[-1],
                "fitted_decline": fitted_decline,
            })
    return violations


def format_trend_violations(violations, window=6, tolerance=0.15):
    """Render the slope-check verdict under the trend table."""
    if not violations:
        return (f"trend check   : OK (no metric declining more than "
                f"{tolerance:.0%} over its last {window} runs)")
    lines = [f"trend check   : {len(violations)} slope regression(s) "
             f"(fitted decline > {tolerance:.0%} over {window} runs)"]
    lines.extend(
        f"  DECLINING   : {v['metric']}: {v['first']:,.2f} -> "
        f"{v['latest']:,.2f} over {v['runs']} runs "
        f"(fitted {v['fitted_decline']:+.1%} decline)"
        for v in violations)
    return "\n".join(lines)


def format_trend(records, last=20):
    """Render per-metric trajectories across the recorded runs.

    Shows the trailing ``last`` runs per metric: sparkline,
    first/latest value, and the relative change across the shown
    window.  Metrics are ordered as first seen so related series stay
    adjacent.
    """
    from repro.analysis.report import format_table

    if not records:
        return ("bench trend   : no history recorded yet "
                "(run `repro bench` to start one)")
    series = {}
    for record in records:
        for metric, value in (record.get("metrics") or {}).items():
            series.setdefault(metric, []).append(value)
    rows = []
    for metric, values in series.items():
        values = values[-last:]
        first, latest = values[0], values[-1]
        change = (latest - first) / first if first else 0.0
        rows.append([metric, len(values), sparkline(values),
                     f"{first:,.2f}", f"{latest:,.2f}", f"{change:+.1%}"])
    shas = [r.get("git_sha") or "?" for r in records[-last:]]
    title = (f"Bench trend — {len(records)} run(s) recorded, "
             f"showing last {min(last, len(records))} "
             f"({shas[0]}..{shas[-1]})")
    return format_table(
        ["metric", "runs", "trend", "first", "latest", "change"],
        rows, title=title)
