"""Program-specialized steppers (the fast kernel's inner loops).

For every operation this module ``exec``-compiles — once per process —
a *maker*: a factory whose inner ``step`` closure performs the entire
per-instruction work of one execution model with every decode decision
already taken at compile time:

* **vanilla big core** (no commit hook): functional execution fused
  with the full OoO timing model in one closure — no ``ExecResult``
  allocation, no dispatch, flag checks folded out of the source;
* **hooked big core** (MEEK / custom commit hooks): per-class timing
  steppers that call the decoded functional closure (hooks observe a
  real :class:`~repro.isa.semantics.ExecResult`, exactly as before);
* **golden model**: functional-only steps;
* **checker replay**: functional replay against the LSL entry fused
  with the little-core 5-stage timing model.

The makers are source-assembled from the fragment table in
:mod:`repro.perf.ops` plus class-specific timing templates that are
line-by-line transcriptions of :meth:`repro.bigcore.core.BigCore.run`
and :meth:`repro.littlecore.pipeline.LittleCorePipeline.step`.  The
slow kernel (``REPRO_SLOW_KERNEL=1``) bypasses all of this and runs
the original loops; the equivalence suite holds the two kernels
bit-identical.
"""

from collections import deque

from repro.common.errors import PrivilegeError, SimulationError
from repro.fabric.packets import RuntimeKind
from repro.isa.instructions import SPECS, InstrClass
from repro.isa.semantics import (_div_signed, _fcvt_l, _fp_div, _fp_sqrt,
                                 _rem_signed)
from repro.perf.cache import cached_compile
from repro.perf.decode import _WORD, _b2f, _f2b, _signed
from repro.perf.ops import exec_fragment, trap_expr
from repro.perf.ops import indent as _indent
from repro.perf.ops import mem_consts as _mem_consts

#: Shared globals namespace for every exec-compiled maker.
_GLOBALS = {
    "WORD": _WORD,
    "SGN": _signed,
    "B2F": _b2f,
    "F2B": _f2b,
    "DIVS": _div_signed,
    "REMS": _rem_signed,
    "FPDIV": _fp_div,
    "FPSQRT": _fp_sqrt,
    "FCVTL": _fcvt_l,
    "PrivilegeError": PrivilegeError,
    "SimulationError": SimulationError,
    "RK_LOAD": RuntimeKind.LOAD,
    "RK_STORE": RuntimeKind.STORE,
    "RK_CSR": RuntimeKind.CSR,
}

def _compile_maker(build_source, name):
    """Compile one maker through the persistent disk cache: a warm
    start unmarshals the code object and skips both the source
    assembly and the ``compile()``."""
    code = cached_compile(name, build_source, f"<repro.perf.jit:{name}>")
    namespace = dict(_GLOBALS)
    exec(code, namespace)
    return namespace["maker"]


# ---------------------------------------------------------------------------
# Big-core steppers
# ---------------------------------------------------------------------------

#: ctx slots for the big-core loop state.
CTX_NEXT_FETCH = 0
CTX_FETCHED = 1
CTX_LINE = 2
CTX_LAST_COMMIT = 3
CTX_COMMITTED = 4

_BIG_SHARED_FIELDS = (
    "ctx, state, regs, fregs, int_ready, fp_ready, rob, iq, ldq, stq, "
    "int_writers, fp_writers, access, pau, p_call, p_ind, p_ret, "
    "ROB_N, IQ_N, LDQ_N, STQ_N, IPRF_N, FPRF_N, FETCH_W, COMMIT_W, "
    "L1I_HIT, REDIRECT_EXTRA, BTB_BUBBLE, FRONT_DEPTH, "
    "IFETCH, LOADK, STOREK, LOADFN, STOREFN, HOOK, FHOOK, CommitEvent, "
    "HOT")

_FETCH_SRC = """\
        line = pc >> 6
        if line != ctx[2]:
            ifetch = access(pc, ctx[0], IFETCH)
            if ifetch > L1I_HIT:
                ctx[0] += ifetch
                ctx[1] = 0
            ctx[2] = line
        nfc = ctx[0]
        if ctx[1] >= FETCH_W:
            nfc += 1
            ctx[0] = nfc
            ctx[1] = 1
        else:
            ctx[1] += 1"""

_RENAME_HEAD_SRC = """\
        rename = nfc + FRONT_DEPTH
        if len(rob) >= ROB_N:
            t = rob.popleft()
            if t > rename:
                rename = t
        if len(iq) >= IQ_N:
            t = iq.popleft()
            if t > rename:
                rename = t"""

_WINDOW_SRC = """\
        if len({q}) >= {n}:
            t = {q}.popleft()
            if t > rename:
                rename = t"""

_COMMIT_HEAD_SRC = """\
        commit = complete + 1
        lcc = ctx[3]
        if commit < lcc:
            commit = lcc
        ctc = ctx[4]
        if commit == lcc:
            if ctc >= COMMIT_W:
                commit += 1
                ctc = 0
        else:
            ctc = 0"""

_HOOK_SRC = """\
        if HOOK is not None:
            event = CommitEvent(index, pc, OP_INSTR, result, commit, ctc)
            adjusted = HOOK(event)
            if adjusted is not None:
                if adjusted < commit:
                    raise SimulationError("commit hook moved commit backwards")
                if adjusted > commit:
                    ctc = 0
                commit = adjusted"""

_BRANCH_CONTROL_SRC = """\
        outcome = pau(pc, taken, next_pc if taken else None)
        if outcome == "mispredict":
            ctx[0] = complete + REDIRECT_EXTRA
            ctx[1] = 0
            ctx[2] = None
        elif outcome == "btb_bubble":
            ctx[0] = nfc + BTB_BUBBLE
            ctx[1] = 0
            ctx[2] = None
        elif taken:
            ctx[0] = nfc + 1
            ctx[1] = 0
            ctx[2] = None"""

_JAL_CONTROL_SRC = """\
        if RD == 1:
            p_call(pc, pc + 4)
        ctx[0] = nfc + 1
        ctx[1] = 0
        ctx[2] = None"""

_JALR_CONTROL_SRC = """\
        if RD == 1:
            p_call(pc, pc + 4)
            correct = p_ind(pc, next_pc)
        elif RS1 == 1 and RD == 0:
            correct = p_ret(pc, next_pc)
        else:
            correct = p_ind(pc, next_pc)
        if correct:
            ctx[0] = nfc + 1
        else:
            ctx[0] = complete + REDIRECT_EXTRA
        ctx[1] = 0
        ctx[2] = None"""


def _ready_src(spec):
    lines = ["        ready = rename + 1"]
    checks = (("reads_int_rs1", "int_ready", "RS1"),
              ("reads_int_rs2", "int_ready", "RS2"),
              ("reads_fp_rs1", "fp_ready", "RS1"),
              ("reads_fp_rs2", "fp_ready", "RS2"))
    for flag, table, reg in checks:
        if getattr(spec, flag):
            lines.append(f"        t = {table}[{reg}]\n"
                         f"        if t > ready:\n"
                         f"            ready = t")
    return "\n".join(lines)


def _rename_src(spec, iclass):
    parts = [_RENAME_HEAD_SRC]
    if iclass is InstrClass.LOAD:
        parts.append(_WINDOW_SRC.format(q="ldq", n="LDQ_N"))
    elif iclass is InstrClass.STORE:
        parts.append(_WINDOW_SRC.format(q="stq", n="STQ_N"))
    if spec.writes_int_rd:
        parts.append(_WINDOW_SRC.format(q="int_writers", n="IPRF_N"))
    if spec.writes_fp_rd:
        parts.append(_WINDOW_SRC.format(q="fp_writers", n="FPRF_N"))
    return "\n".join(parts)


def _issue_src(iclass):
    if iclass is InstrClass.LOAD:
        return ("        issue = acquire(ready, 1)\n"
                "        complete = issue + access(addr, issue, LOADK)")
    if iclass is InstrClass.STORE:
        return ("        issue = acquire(ready, 1)\n"
                "        complete = issue + 1")
    return ("        issue = acquire(ready, OCC)\n"
            "        complete = issue + LAT")


def _control_src(op, iclass):
    if iclass is InstrClass.BRANCH:
        return _BRANCH_CONTROL_SRC
    if iclass is InstrClass.JUMP:
        return _JAL_CONTROL_SRC if op == "jal" else _JALR_CONTROL_SRC
    return ""


def _book_src(spec, iclass):
    lines = ["        rob.append(commit)", "        iq.append(issue)"]
    if iclass is InstrClass.LOAD:
        lines.append("        ldq.append(commit)")
    elif iclass is InstrClass.STORE:
        lines.append("        stq.append(commit)")
    if spec.writes_int_rd:
        lines.append("        if RD:\n"
                     "            int_ready[RD] = complete\n"
                     "            int_writers.append(commit)")
    if spec.writes_fp_rd:
        lines.append("        fp_ready[RD] = complete\n"
                     "        fp_writers.append(commit)")
    return "\n".join(lines)


def _fast_hook_src(op, iclass):
    """The fast_commit call for the fused MEEK-hooked step.

    The record classification here is the source-level image of
    ``DataExtractionUnit.classify`` — keep the two in sync (the
    equivalence suite compares the kernels end to end).

    Hook-path elimination: an op that logs nothing and cannot trap is
    a *dormant* hook — the only thing ``fast_commit`` would do for it
    is bump the segment's instruction count and test the checkpoint
    timeout.  Those two operations are inlined here against the
    controller's shared ``HOT`` cell (``[instr_count, close_budget]``,
    see :attr:`~repro.core.controller.MeekController._hot`), so the
    per-commit controller call disappears by construction; the
    controller is only entered when a segment must open or close, or
    when the commit produces a run-time log record.
    """
    trap = trap_expr(op)
    if iclass is InstrClass.LOAD:
        args = "RK_LOAD, addr, value & WORD, MEM_SIZE"
    elif iclass is InstrClass.STORE:
        args = "RK_STORE, addr, value & MEM_MASK, MEM_SIZE"
    elif iclass is InstrClass.CSR:
        args = "RK_CSR, IMM, old, 8"
    else:
        args = "None, 0, 0, 0"
    # state.pc must be architecturally up to date before the controller
    # observes the commit (status snapshots read it as the next PC).
    if args == "None, 0, 0, 0" and trap == "None":
        return (
            "        state.pc = next_pc\n"
            "        n = HOT[0] + 1\n"
            "        if n < HOT[1]:\n"
            "            HOT[0] = n\n"
            "        else:\n"
            "            newc = FHOOK(index, pc, commit, ctc, None,"
            " None, 0, 0, 0)\n"
            "            if newc > commit:\n"
            "                ctc = 0\n"
            "                commit = newc")
    return ("        state.pc = next_pc\n"
            f"        newc = FHOOK(index, pc, commit, ctc, {trap}, {args})\n"
            "        if newc > commit:\n"
            "            ctc = 0\n"
            "            commit = newc")


def _build_big_source(op, mode):
    """Assemble the big-core step maker source for ``op``.

    Modes: ``"lean"`` (no hook) fuses the functional fragment into the
    step with no ExecResult; ``"fast"`` does the same but reports each
    commit to the MEEK controller's :meth:`fast_commit` as scalars;
    ``"hooked"`` calls the decoded closure ``FN`` so arbitrary commit
    hooks observe real ExecResults, and runs the classic hook protocol.
    """
    spec = SPECS[op]
    iclass = spec.iclass
    hooked = mode == "hooked"

    if hooked:
        exec_src = "        result = FN(state, None, MH)"
        if iclass in (InstrClass.BRANCH, InstrClass.JUMP,
                      InstrClass.MEEK):
            exec_src += "\n        taken = result.taken"
        if iclass in (InstrClass.BRANCH, InstrClass.JUMP):
            exec_src += "\n        next_pc = result.next_pc"
        if iclass in (InstrClass.LOAD, InstrClass.STORE):
            exec_src += "\n        addr = result.mem_addr"
        trap = "result.trap"
    else:
        exec_src = _indent(exec_fragment(op, mem_mode="direct"), 8)
        trap = trap_expr(op)

    store_retire = ""
    if iclass is InstrClass.STORE:
        store_retire = "        access(addr, commit, STOREK)\n"

    if hooked:
        hook_block = _HOOK_SRC + "\n"
    elif mode == "fast":
        hook_block = _fast_hook_src(op, iclass) + "\n"
    else:
        hook_block = ""
    # In hooked mode the decoded closure has already advanced state.pc;
    # fast mode advances it just before the controller call; only the
    # lean mode applies next_pc in the tail.
    pc_tail = "        state.pc = next_pc\n" if mode == "lean" else ""

    control = _control_src(op, iclass)
    source = f"""\
def maker(RD, RS1, RS2, IMM, OP_INSTR, MH, FN, POOL, LAT, OCC, SHARED):
    ({_BIG_SHARED_FIELDS}) = SHARED
    acquire = POOL.acquire
    UIMM = IMM & WORD
    IMM12 = IMM << 12
    LUI_VALUE = (IMM << 12) & WORD
{_mem_consts(op)}\
    def step(pc, index):
{_FETCH_SRC}
{_rename_src(spec, iclass)}
{_ready_src(spec)}
{exec_src}
{_issue_src(iclass)}
{control + chr(10) if control else ''}\
{_COMMIT_HEAD_SRC}
{store_retire}{hook_block}\
        ctx[3] = commit
        ctx[4] = ctc + 1
{_book_src(spec, iclass)}
{pc_tail}\
        return {trap}
    return step
"""
    return source


_big_makers = {}


def _big_maker(op, mode):
    key = (op, mode)
    maker = _big_makers.get(key)
    if maker is None:
        maker = _compile_maker(lambda: _build_big_source(op, mode),
                               f"big:{op}:{mode}")
        _big_makers[key] = maker
    return maker


def run_big_core(core, program, decoded, state, max_instructions,
                 commit_hook, meek_handler, halt_on_trap):
    """The fast kernel's replacement for the BigCore.run loop body.

    Returns ``(instructions, cycles, halted_by)``; the caller wraps the
    RunResult.
    """
    from repro.bigcore.core import (BTB_BUBBLE_CYCLES, CommitEvent,
                                    FRONTEND_DEPTH)
    from repro.mem.hierarchy import AccessKind

    cfg = core.config
    hierarchy = core.hierarchy
    predictor = core.predictor
    # The unmodified MEEK controller hook gets the scalar fast path;
    # any other hook — custom instrumentation, or a controller subclass
    # overriding either method — keeps the classic CommitEvent/
    # ExecResult protocol so its overrides are actually invoked.
    fast_hook = None
    hot = [0, 0]
    if commit_hook is not None:
        owner = getattr(commit_hook, "__self__", None)
        if owner is not None:
            from repro.core.controller import MeekController
            owner_type = type(owner)
            if (getattr(owner_type, "commit_hook", None)
                    is MeekController.commit_hook
                    and getattr(owner_type, "fast_commit", None)
                    is MeekController.fast_commit
                    and getattr(commit_hook, "__func__", None)
                    is MeekController.commit_hook):
                fast_hook = owner.fast_commit
                # The controller's shared hot cell: dormant commits are
                # absorbed in the stepper against this list and never
                # enter the controller (see _fast_hook_src).
                hot = owner._hot
    if commit_hook is None:
        mode = "lean"
    elif fast_hook is not None:
        mode = "fast"
    else:
        mode = "hooked"
    ctx = [0, 0, None, 0, 0]
    int_ready = [0] * 32
    fp_ready = [0] * 32
    rob = deque()
    iq = deque()
    ldq = deque()
    stq = deque()
    int_writers = deque()
    fp_writers = deque()

    shared = (
        ctx, state, state.int_regs, state.fp_regs, int_ready, fp_ready,
        rob, iq, ldq, stq, int_writers, fp_writers,
        hierarchy.access, predictor.predict_and_update,
        predictor.predict_call, predictor.predict_indirect,
        predictor.predict_return,
        cfg.rob_entries, cfg.issue_queue_entries, cfg.ldq_entries,
        cfg.stq_entries, max(1, cfg.int_phys_regs - 32),
        max(1, cfg.fp_phys_regs - 32), cfg.fetch_width, cfg.commit_width,
        hierarchy.config.l1i.hit_latency,
        max(1, cfg.mispredict_penalty - FRONTEND_DEPTH), BTB_BUBBLE_CYCLES,
        FRONTEND_DEPTH,
        AccessKind.IFETCH, AccessKind.LOAD, AccessKind.STORE,
        state.memory.load, state.memory.store, commit_hook, fast_hook,
        CommitEvent, hot,
    )

    pools = core._pools
    latencies = core._latency
    occupancies = core._occupancy
    steps = []
    append = steps.append
    for entry in decoded.entries:
        instr = entry.instr
        iclass = entry.iclass
        maker = _big_maker(instr.op, mode)
        append(maker(instr.rd, instr.rs1, instr.rs2, instr.imm, instr,
                     meek_handler, entry.fn, pools[iclass],
                     latencies.get(iclass, 1), occupancies.get(iclass, 1),
                     shared))

    base = decoded.base
    n = len(steps)
    index = 0
    halted_by = "end"
    pc = state.pc
    while True:
        if max_instructions is not None and index >= max_instructions:
            halted_by = "limit"
            break
        offset = pc - base
        if offset < 0 or offset & 3:
            raise SimulationError(f"bad fetch address {pc:#x} "
                                  f"(base {base:#x})")
        idx = offset >> 2
        if idx >= n:
            break
        trap = steps[idx](pc, index)
        index += 1
        pc = state.pc
        if trap is not None and halt_on_trap:
            halted_by = trap
            break

    return index, ctx[CTX_LAST_COMMIT], halted_by


# ---------------------------------------------------------------------------
# Golden-model steps
# ---------------------------------------------------------------------------

def _build_golden_source(op):
    return f"""\
def maker(RD, RS1, RS2, IMM, OP_INSTR, MH, SHARED):
    (state, regs, fregs, LOADFN, STOREFN) = SHARED
    UIMM = IMM & WORD
    IMM12 = IMM << 12
    LUI_VALUE = (IMM << 12) & WORD
{_mem_consts(op)}\
    def step(pc):
{_indent(exec_fragment(op, mem_mode="direct"), 8)}
        state.pc = next_pc
        return {trap_expr(op)}
    return step
"""


_golden_makers = {}


def _golden_maker(op):
    maker = _golden_makers.get(op)
    if maker is None:
        maker = _compile_maker(lambda: _build_golden_source(op),
                               f"golden:{op}")
        _golden_makers[op] = maker
    return maker


def build_golden_steps(decoded, state, meek_handler=None):
    """Functional-only step closures for ``run_golden``."""
    shared = (state, state.int_regs, state.fp_regs,
              state.memory.load, state.memory.store)
    steps = []
    append = steps.append
    for entry in decoded.entries:
        instr = entry.instr
        append(_golden_maker(instr.op)(instr.rd, instr.rs1, instr.rs2,
                                       instr.imm, instr, meek_handler,
                                       shared))
    return steps


# ---------------------------------------------------------------------------
# Checker replay steps (functional replay + little-core timing, fused)
# ---------------------------------------------------------------------------

_LITTLE_TIMING = {
    InstrClass.DIV: """\
        if pipeline._div_free > issue:
            issue = pipeline._div_free
        complete = issue + DIV_BUSY
        pipeline._div_free = complete
        next_issue = issue + RATIO""",
    InstrClass.FPDIV: """\
        if pipeline._fpu_free > issue:
            issue = pipeline._fpu_free
        complete = issue + FDIV_BUSY
        pipeline._fpu_free = complete
        next_issue = issue + RATIO""",
    InstrClass.FP: """\
        if pipeline._fpu_free > issue:
            issue = pipeline._fpu_free
        complete = issue + FP_LAT
        pipeline._fpu_free = issue + FP_OCC
        next_issue = issue + RATIO""",
    InstrClass.MUL: """\
        complete = issue + MUL_LAT
        next_issue = issue + RATIO""",
    InstrClass.LOAD: """\
        complete = issue + LOAD_LAT
        if delivery is not None and delivery > complete:
            complete = delivery
        next_issue = issue + RATIO""",
    InstrClass.BRANCH: """\
        complete = issue + RATIO
        next_issue = issue + RATIO
        if taken:
            next_issue += BR_PEN""",
    # Jumps are unconditionally taken, so the penalty folds in.
    InstrClass.JUMP: """\
        complete = issue + RATIO
        next_issue = issue + RATIO + BR_PEN""",
}

_LITTLE_DEFAULT_TIMING = """\
        complete = issue + RATIO
        next_issue = issue + RATIO"""


def _little_ready_src(spec):
    lines = []
    checks = (("reads_int_rs1", "int_ready", "RS1"),
              ("reads_int_rs2", "int_ready", "RS2"),
              ("reads_fp_rs1", "fp_ready", "RS1"),
              ("reads_fp_rs2", "fp_ready", "RS2"))
    for flag, table, reg in checks:
        if getattr(spec, flag):
            lines.append(f"        t = {table}[{reg}]\n"
                         f"        if t > issue:\n"
                         f"            issue = t")
    return "\n".join(lines) if lines else "        pass"


def _little_mark_src(spec):
    if spec.writes_int_rd:
        return ("        if RD:\n"
                "            int_ready[RD] = complete")
    if spec.writes_fp_rd:
        return "        fp_ready[RD] = complete"
    return "        pass"


def _build_replay_source(op):
    spec = SPECS[op]
    iclass = spec.iclass
    needs_entry = iclass in (InstrClass.LOAD, InstrClass.STORE,
                             InstrClass.CSR)

    if iclass is InstrClass.CSR:
        # Normal CSR execution plus the log comparison the checker's
        # advance loop performs after execute().
        exec_src = _indent(exec_fragment(op, mem_mode="direct"), 8)
        exec_src += ("\n"
                     "        mismatch = None\n"
                     "        if entry.rkind is not RK_CSR:\n"
                     "            mismatch = 'lsl-kind-mismatch-on-csr'\n"
                     "        elif entry.addr != IMM or entry.data != old:\n"
                     "            mismatch = 'csr-mismatch'")
    elif needs_entry:
        exec_src = ("        mismatch = None\n"
                    + _indent(exec_fragment(op, mem_mode="replay"), 8))
    else:
        exec_src = _indent(exec_fragment(op, mem_mode="direct"), 8)

    timing = _LITTLE_TIMING.get(iclass, _LITTLE_DEFAULT_TIMING)
    ret = "(complete, mismatch)" if needs_entry else "complete"

    source = f"""\
def maker(RD, RS1, RS2, IMM, OP_INSTR, SHARED):
    (pipeline, icache, icache_lookup, icache_fill, IC, IC_SHIFT,
     int_ready, fp_ready,
     RATIO, MISS_PEN, DIV_BUSY, FDIV_BUSY, FP_LAT, FP_OCC, MUL_LAT,
     LOAD_LAT, BR_PEN) = SHARED
    MH = None  # checker replay never runs a MEEK handler
    UIMM = IMM & WORD
    IMM12 = IMM << 12
    LUI_VALUE = (IMM << 12) & WORD
{_mem_consts(op)}\
    def replay(state, pc, entry, delivery):
        regs = state.int_regs
        fregs = state.fp_regs
        start = pipeline.time
        # Same-line fetch skip: a line just looked up is resident and
        # already MRU, so repeating lookup() would only re-count the
        # hit and touch the LRU list.  Count the hit directly; stats
        # and LRU state stay bit-identical to the naive lookup.
        line = pc >> IC_SHIFT
        if line == IC[0]:
            icache.hits += 1
        elif icache_lookup(pc):
            IC[0] = line
        else:
            icache_fill(pc)
            IC[0] = line
            start += MISS_PEN
        issue = start
{_little_ready_src(spec)}
{exec_src}
{timing}
{_little_mark_src(spec)}
        pipeline.time = next_issue
        pipeline.instructions_retired += 1
        pipeline.busy_cycles += next_issue - start
        state.pc = next_pc
        return {ret}
    return replay
"""
    return source


_replay_makers = {}


def _replay_maker(op):
    maker = _replay_makers.get(op)
    if maker is None:
        maker = _compile_maker(lambda: _build_replay_source(op),
                               f"replay:{op}")
        _replay_makers[op] = maker
    return maker


def build_replay_steps(decoded, pipeline):
    """Fused replay closures for one little-core pipeline.

    Cached on the pipeline object per decoded program: the pipeline
    persists across segments, so every CheckerRun on this core reuses
    the same table.
    """
    cache = getattr(pipeline, "_replay_tables", None)
    if cache is None:
        cache = {}
        pipeline._replay_tables = cache
    # Keyed by the DecodedProgram object itself (identity hash, strong
    # reference): an id()-based key would collide once a decoded image
    # is garbage-collected and its id reused by a later program.
    table = cache.get(decoded)
    if table is not None:
        return table

    ic_cell = getattr(pipeline, "_ic_line", None)
    if ic_cell is None:
        # Last fetched I-cache line, shared by every replay table on
        # this pipeline (the pipeline — and its icache — persist
        # across segments, so the cell must too).
        ic_cell = [-1]
        pipeline._ic_line = ic_cell
    icache = pipeline.icache
    shared = (pipeline, icache, icache.lookup, icache.fill,
              ic_cell, icache._offset_bits,
              pipeline._int_ready, pipeline._fp_ready,
              pipeline.ratio, pipeline._miss_penalty, pipeline._div_busy,
              pipeline._fdiv_busy, pipeline._fp_lat, pipeline._fp_occ,
              pipeline._mul_lat, pipeline._load_data_lat,
              pipeline._branch_pen)
    steps = []
    append = steps.append
    for entry in decoded.entries:
        instr = entry.instr
        append(_replay_maker(instr.op)(instr.rd, instr.rs1, instr.rs2,
                                       instr.imm, instr, shared))
    cache[decoded] = steps
    return steps


# ---------------------------------------------------------------------------
# Warm-up
# ---------------------------------------------------------------------------

def prime_steppers(modes=("lean", "fast")):
    """Materialize every per-op maker ahead of the first simulation.

    Long-lived processes (batch mode, campaign workers) call this once
    so no simulation pays a first-touch compile; with a warm disk cache
    the whole prime is unmarshal-only.  Returns the number of makers
    primed.
    """
    from repro.perf.decode import _decode_maker

    count = 0
    for op in SPECS:
        _decode_maker(op)
        _golden_maker(op)
        _replay_maker(op)
        count += 3
        for mode in modes:
            _big_maker(op, mode)
            count += 1
    return count
