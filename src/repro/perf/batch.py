"""Batched lockstep campaign kernel: N fault-injection points per step.

Campaigns run thousands of near-identical systems that differ only in
their injected faults.  Fault injection corrupts *forwarded copies* of
data — run-time records, status snapshots, DC-Buffer and fabric
payloads — never big-core architectural state (the PR-8 architectural
non-interference battery pins this down).  Three consequences:

* the functional instruction stream (PCs, register and memory values,
  branch outcomes, traps) is identical across every lane of a batch;
* cache *contents* evolve by access order alone, never by access
  timing, so every lane sees the same serving level for every access
  (:meth:`~repro.mem.hierarchy.MemoryHierarchy.lookup_code`);
* the branch predictor sees the same ``(pc, outcome)`` stream, so
  every lane predicts and redirects identically.

A batch therefore advances with ONE shared functional execution (the
decoded-closure program from :mod:`repro.perf.decode`, one decode for
the whole batch), ONE shared tag walk, and ONE shared predictor — and
keeps per-lane only what faults can actually perturb through MEEK
backpressure: the commit-time clock.  Per-lane timing lives in
structure-of-arrays numpy vectors (fetch/commit cycles, scoreboards,
occupancy windows as deques of lane-vectors, functional-unit pools as
2-D ``free_at`` matrices).  Dormant commits — nothing to log, cannot
trap — are absorbed with vector arithmetic against the controllers'
inline-budget cells.  Python executes per-lane only where lanes
genuinely differ: log-producing commits (the MEEK hook, where each
lane's own controller/fabric/injector runs, so fault hooks fire
per-lane), cache misses (per-lane DRAM window and L1 MSHR queueing),
and the final trap.

SoA backend: numpy.  The ``array`` module was benched as the
alternative (see ``soa_lane_backend`` in :mod:`repro.perf.bench`) and
loses by an order of magnitude: the recurrences here are dominated by
element-wise ``max`` against scoreboard rows, which ``array.array``
can only do in a Python loop while numpy does it in one fused C pass.
When numpy is unavailable the batch kernel reports itself unavailable
and campaigns fall back to the scalar kernel.

Divergence and eviction: a lane's architectural state *cannot*
diverge — the non-interference property above is load-bearing and is
enforced by the bit-identity battery.  Eviction is therefore a purely
defensive mechanism: a lane whose controller raises, or one forcibly
evicted by the test hooks (``REPRO_BATCH_FORCE_EVICT`` /
``force_eviction_hook``), is dropped from the batch mid-run and the
caller reruns that point on the scalar kernel from cycle 0 — which is
bit-identical by definition.  Whole-engine failures abort the batch
the same way for every lane.

``REPRO_NO_BATCH=1`` disables batching outright; ``REPRO_SLOW_KERNEL=1``
(the historical escape hatch) does too, because batching reproduces
the *fast*-kernel commit protocol.
"""

import os

from repro.common.errors import SimulationError
from repro.core.controller import MeekController
from repro.core.system import MeekSystem
from repro.fabric.packets import RuntimeEntry
from repro.isa.instructions import InstrClass
from repro.isa.state import ArchState
from repro.mem.hierarchy import AccessKind, L1_HIT
from repro.perf.decode import decode_program, slow_kernel_enabled

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is part of the toolchain
    _np = None

#: Default lane count for ``--batch auto``: wide enough to amortize the
#: shared per-instruction work, small enough that one batch stays well
#: under a campaign's per-point timeout budget.  Measured points/s
#: peaks around 32 lanes (64 is slightly better warm but regresses at
#: dense fault rates where per-lane Python dominates).
DEFAULT_BATCH_LANES = 32

#: Test hook: ``callable(lane, instr_index) -> bool`` forcing an
#: eviction; see also ``REPRO_BATCH_FORCE_EVICT="lane:index[,...]"``.
force_eviction_hook = None

_RA = 1  # link register (jal/jalr calling convention)


def no_batch_enabled():
    """``REPRO_NO_BATCH=1`` turns the batch kernel off."""
    return os.environ.get("REPRO_NO_BATCH", "") not in ("", "0")


def batch_available():
    """Whether the batched kernel may run in this process."""
    return (_np is not None and not no_batch_enabled()
            and not slow_kernel_enabled())


class BatchError(SimulationError):
    """Whole-batch failure: rerun every lane on the scalar kernel."""


class _ForcedEviction(Exception):
    """Raised by the test hooks to force one lane out mid-run."""


def _env_forced_evictions():
    """Parse ``REPRO_BATCH_FORCE_EVICT`` into {(lane, index), ...}."""
    raw = os.environ.get("REPRO_BATCH_FORCE_EVICT", "")
    forced = set()
    for item in raw.split(","):
        item = item.strip()
        if not item:
            continue
        lane, _, index = item.partition(":")
        try:
            forced.add((int(lane), int(index)))
        except ValueError:
            raise BatchError(
                f"bad REPRO_BATCH_FORCE_EVICT entry {item!r}") from None
    return forced


class _VecPool:
    """A functional-unit pool across all lanes: ``free_at`` is
    ``(units, lanes)``; ties go to the lowest unit index, matching the
    scalar ``_FuPool`` linear scan."""

    __slots__ = ("free_at", "_lane_index")

    def __init__(self, units, lanes):
        self.free_at = _np.zeros((max(1, units), lanes), dtype=_np.float64)
        self._lane_index = _np.arange(lanes)

    def acquire(self, ready, occupancy):
        free_at = self.free_at
        if free_at.shape[0] == 1:
            row = free_at[0]
            issue = _np.maximum(ready, row)
            _np.add(issue, occupancy, out=row)
            return issue
        best = _np.argmin(free_at, axis=0)
        lanes = self._lane_index
        issue = _np.maximum(ready, free_at[best, lanes])
        free_at[best, lanes] = issue + occupancy
        return issue


class _Plan:
    """Per-static-instruction facts, resolved once per program."""

    __slots__ = ("fn", "cls", "op", "rd", "rs1", "rs2",
                 "is_load", "is_store", "is_branch", "is_jump",
                 "needs_entry", "reads_i1", "reads_i2", "reads_f1",
                 "reads_f2", "writes_int", "writes_fp")

    def __init__(self, decoded_instr):
        instr = decoded_instr.instr
        spec = instr.spec
        self.fn = decoded_instr.fn
        self.cls = decoded_instr.iclass
        self.op = instr.op
        self.rd = instr.rd
        self.rs1 = instr.rs1
        self.rs2 = instr.rs2
        self.is_load = self.cls is InstrClass.LOAD
        self.is_store = self.cls is InstrClass.STORE
        self.is_branch = self.cls is InstrClass.BRANCH
        self.is_jump = self.cls is InstrClass.JUMP
        self.needs_entry = decoded_instr.needs_entry
        self.reads_i1 = spec.reads_int_rs1
        self.reads_i2 = spec.reads_int_rs2
        self.reads_f1 = spec.reads_fp_rs1
        self.reads_f2 = spec.reads_fp_rs2
        self.writes_int = spec.writes_int_rd
        self.writes_fp = spec.writes_fp_rd


# DecodedProgram has __slots__, so plans live in a small side cache
# keyed by decoded-program identity (bounded: campaigns reuse a handful
# of programs; entries are evicted FIFO).
_plan_cache = {}
_PLAN_CACHE_MAX = 64


def _plans_for(decoded):
    cached = _plan_cache.get(id(decoded))
    if cached is not None and cached[0] is decoded:
        return cached[1]
    plans = [_Plan(d) for d in decoded.entries]
    if len(_plan_cache) >= _PLAN_CACHE_MAX:
        _plan_cache.pop(next(iter(_plan_cache)))
    _plan_cache[id(decoded)] = (decoded, plans)
    return plans


class BatchOutcome:
    """What one batch produced.

    ``results[i]`` is the lane's :class:`~repro.core.system.MeekRunResult`
    or ``None`` when the lane was evicted; ``evicted[i]`` names the
    eviction cause (``None`` for lanes that completed).  ``stats``
    carries occupancy/eviction observability:
    ``{"lanes", "instructions", "occupancy", "evictions": {cause: n}}``.
    """

    __slots__ = ("results", "evicted", "stats")

    def __init__(self, results, evicted, stats):
        self.results = results
        self.evicted = evicted
        self.stats = stats


def run_batch(config, program, injectors):
    """Advance one batch of MEEK systems in lockstep.

    ``injectors`` (one per lane, or ``None`` entries for fault-free
    lanes) defines the batch width.  Every lane runs ``program`` under
    ``config``; per-lane results are bit-identical to
    ``MeekSystem(config, injector).run(program)`` on the scalar fast
    kernel.  Raises :class:`BatchError` when the whole batch cannot
    run (caller falls back to scalar execution for every lane).
    """
    if not batch_available():
        raise BatchError("batch kernel unavailable "
                         "(numpy/REPRO_NO_BATCH/REPRO_SLOW_KERNEL)")
    engine = _BatchEngine(config, program, injectors)
    try:
        return engine.run()
    except BaseException:
        # Whole-batch abort: the caller reruns every lane on the
        # scalar kernel.  Leave no in-flight memo recordings behind —
        # a stale leader would turn future same-key segments into
        # perpetual followers that always fall back.
        for lane in engine.live:
            engine._abandon_recordings(lane)
        raise


class _BatchEngine:
    def __init__(self, config, program, injectors):
        self.config = config
        self.program = program
        self.lanes = len(injectors)
        if self.lanes < 1:
            raise BatchError("empty batch")
        if not config.checking_enabled:
            # Without checking the controller never runs and the scalar
            # kernel is already optimal; nothing to batch.
            raise BatchError("batching requires checking_enabled")
        self.decoded = decode_program(program)
        self.plans = _plans_for(self.decoded)
        for plan in self.plans:
            if plan.cls is InstrClass.MEEK:
                raise BatchError("MEEK-extension programs are not batchable")
        # Shared functional/arch state: one execution for all lanes.
        self.state = ArchState(pc=program.entry_pc)
        program.data.apply(self.state.memory)
        # Per-lane systems: controller, fabric, pipelines, DEU and
        # injector are all genuinely per-lane (fault hooks fire
        # per-lane); the big core contributes the lane's private
        # DRAM/MSHR queueing state.  Lane 0's big core additionally
        # donates the *shared* tag state, predictor and FU tables —
        # tag walks and latency resolution touch disjoint state.
        self.systems = []
        self.controllers = []
        self.lane_mem = []
        for injector in injectors:
            system = MeekSystem(config, injector=injector)
            controller = system.attach(program, self.state)
            self.systems.append(system)
            self.controllers.append(controller)
            self.lane_mem.append(system.big_core.hierarchy)
        donor = self.systems[0].big_core
        self.shared_mem = donor.hierarchy
        self.predictor = donor.predictor
        from repro.perf.decode import CLASS_LIST
        self.pools = {
            cls: _VecPool(len(donor._pools[cls].free_at), self.lanes)
            for cls in CLASS_LIST}
        self.latency = donor._latency
        self.occupancy = donor._occupancy
        self.classify = self.controllers[0].deu.classify
        self._forced = _env_forced_evictions()
        # Lane liveness + observability.
        self.live = list(range(self.lanes))
        self.evicted = [None] * self.lanes
        self.eviction_counts = {}
        self._occupancy_sum = 0

    # -- eviction ----------------------------------------------------------

    def _should_force_evict(self, lane, index):
        if (lane, index) in self._forced:
            return True
        hook = force_eviction_hook
        return hook is not None and hook(lane, index)

    def _evict(self, lane, cause):
        self.evicted[lane] = cause
        self.eviction_counts[cause] = self.eviction_counts.get(cause, 0) + 1
        self.live.remove(lane)
        self._abandon_recordings(lane)
        if not self.live:
            raise BatchError("every lane evicted")

    def _abandon_recordings(self, lane):
        """Retire the lane's in-flight memo recording (if any) so
        sibling followers fall back instead of waiting on a leader
        that will never progress."""
        ctrl = self.controllers[lane]
        if ctrl.active is not None:
            checker = ctrl.checkers.get(ctrl.active.seg_id)
            if checker is not None:
                checker.abandon_recording()

    # -- the lockstep loop -------------------------------------------------

    def run(self):
        np = _np
        state = self.state
        plans = self.plans
        base = self.decoded.base
        n_static = len(plans)
        lanes = self.lanes
        cfg = self.config.big_core
        shared = self.shared_mem
        predictor = self.predictor
        classify = self.classify
        controllers = self.controllers
        lane_mem = self.lane_mem
        live = self.live
        maximum = np.maximum

        from repro.bigcore.core import BTB_BUBBLE_CYCLES, FRONTEND_DEPTH
        fetch_width = cfg.fetch_width
        commit_width = cfg.commit_width
        rob_entries = cfg.rob_entries
        iq_entries = cfg.issue_queue_entries
        ldq_entries = cfg.ldq_entries
        stq_entries = cfg.stq_entries
        int_prf_window = max(1, cfg.int_phys_regs - 32)
        fp_prf_window = max(1, cfg.fp_phys_regs - 32)
        redirect_extra = max(1, cfg.mispredict_penalty - FRONTEND_DEPTH)
        l1i_hit = shared.config.l1i.hit_latency
        l1d_hit = shared.config.l1d.hit_latency
        ifetch_kind = AccessKind.IFETCH
        load_kind = AccessKind.LOAD
        store_kind = AccessKind.STORE

        # One (plan, pool, latency, occupancy) row per static
        # instruction: the per-instruction dict lookups, resolved once.
        pools = self.pools
        latency = self.latency
        occupancy = self.occupancy
        steps = [(p, pools[p.cls], latency.get(p.cls, 1),
                  occupancy.get(p.cls, 1)) for p in plans]

        from collections import deque
        int_ready = np.zeros((32, lanes), dtype=np.float64)
        fp_ready = np.zeros((32, lanes), dtype=np.float64)
        rob = deque()
        iq = deque()
        ldq = deque()
        stq = deque()
        int_writers = deque()
        fp_writers = deque()

        nfc = np.zeros(lanes, dtype=np.float64)     # next fetch cycle
        last_commit = np.zeros(lanes, dtype=np.float64)
        ctc = np.zeros(lanes, dtype=np.int64)       # committed this cycle
        fetched = 0                                 # lane-invariant
        cur_line = None                             # lane-invariant
        # Mirror of each controller's inline-budget cell [count, budget].
        hot0 = np.zeros(lanes, dtype=np.int64)
        hot1 = np.zeros(lanes, dtype=np.int64)
        for b, ctrl in enumerate(controllers):
            hot0[b], hot1[b] = ctrl._hot
        # Scratch vectors reused every iteration (they never escape
        # one loop trip; anything appended to a window deque or a
        # scoreboard row is a fresh array or a row-copy assignment).
        complete = np.zeros(lanes, dtype=np.float64)
        same = np.zeros(lanes, dtype=bool)
        bump = np.zeros(lanes, dtype=bool)
        absorbed = np.zeros(lanes, dtype=np.int64)
        fire = np.zeros(lanes, dtype=bool)

        check_forced = bool(self._forced) or force_eviction_hook is not None
        occupancy_sum = 0
        index = 0
        halted_by = "end"
        while True:
            pc = state.pc
            offset = pc - base
            if offset < 0 or offset & 3:
                raise BatchError(f"pc {pc:#x} left the decoded image")
            idx = offset >> 2
            if idx >= n_static:
                break
            p, pool, lat, occ = steps[idx]

            # ---- fetch (shared tag walk, per-lane miss queueing) -----
            # ``nfc`` doubles as this instruction's fetch cycle: it is
            # only rebound (never mutated in place) between here and
            # the control-flow handlers that read it.
            line = pc >> 6
            if line != cur_line:
                code = shared.lookup_code(pc, ifetch_kind)
                if code != L1_HIT:
                    for b in live:
                        nfc[b] += lane_mem[b].latency_for_code(
                            code, float(nfc[b]), ifetch_kind)
                    fetched = 0
                cur_line = line
            if fetched >= fetch_width:
                nfc += 1
                fetched = 0
            fetched += 1

            # ---- rename/dispatch (occupancy windows) -----------------
            rename = nfc + FRONTEND_DEPTH
            if len(rob) >= rob_entries:
                maximum(rename, rob.popleft(), out=rename)
            if len(iq) >= iq_entries:
                maximum(rename, iq.popleft(), out=rename)
            if p.is_load and len(ldq) >= ldq_entries:
                maximum(rename, ldq.popleft(), out=rename)
            if p.is_store and len(stq) >= stq_entries:
                maximum(rename, stq.popleft(), out=rename)
            if p.writes_int and len(int_writers) >= int_prf_window:
                maximum(rename, int_writers.popleft(), out=rename)
            if p.writes_fp and len(fp_writers) >= fp_prf_window:
                maximum(rename, fp_writers.popleft(), out=rename)

            # ---- operand readiness (aliases rename, dead below) ------
            rename += 1
            ready = rename
            if p.reads_i1:
                maximum(ready, int_ready[p.rs1], out=ready)
            if p.reads_i2:
                maximum(ready, int_ready[p.rs2], out=ready)
            if p.reads_f1:
                maximum(ready, fp_ready[p.rs1], out=ready)
            if p.reads_f2:
                maximum(ready, fp_ready[p.rs2], out=ready)

            # ---- functional execution (shared, once per batch) -------
            result = p.fn(state, None, None)

            # ---- issue + complete ------------------------------------
            if p.is_load:
                issue = pool.acquire(ready, 1)
                code = shared.lookup_code(result.mem_addr, load_kind)
                if code == L1_HIT:
                    np.add(issue, l1d_hit, out=complete)
                else:
                    np.copyto(complete, issue)
                    for b in live:
                        complete[b] += lane_mem[b].latency_for_code(
                            code, float(issue[b]), load_kind)
            elif p.is_store:
                issue = pool.acquire(ready, 1)
                np.add(issue, 1, out=complete)
            else:
                issue = pool.acquire(ready, occ)
                np.add(issue, lat, out=complete)

            # ---- control flow / prediction (shared outcome) ----------
            if p.is_branch:
                outcome = predictor.predict_and_update(
                    pc, result.taken,
                    target=result.next_pc if result.taken else None)
                if outcome == "mispredict":
                    nfc = complete + redirect_extra
                    fetched = 0
                    cur_line = None
                elif outcome == "btb_bubble":
                    nfc = nfc + BTB_BUBBLE_CYCLES
                    fetched = 0
                    cur_line = None
                elif result.taken:
                    nfc = nfc + 1
                    fetched = 0
                    cur_line = None
            elif p.is_jump:
                if p.op == "jal":
                    if p.rd == _RA:
                        predictor.predict_call(pc, pc + 4)
                    correct = True
                else:  # jalr
                    if p.rd == _RA:
                        predictor.predict_call(pc, pc + 4)
                        correct = predictor.predict_indirect(
                            pc, result.next_pc)
                    elif p.rs1 == _RA and p.rd == 0:
                        correct = predictor.predict_return(pc, result.next_pc)
                    else:
                        correct = predictor.predict_indirect(
                            pc, result.next_pc)
                if not correct:
                    nfc = complete + redirect_extra
                else:
                    nfc = nfc + 1
                fetched = 0
                cur_line = None

            # ---- commit head -----------------------------------------
            commit = complete + 1
            maximum(commit, last_commit, out=commit)
            np.equal(commit, last_commit, out=same)
            np.greater_equal(ctc, commit_width, out=bump)
            np.logical_and(bump, same, out=bump)
            if bump.any():
                commit[bump] += 1
                ctc[bump] = 0
            np.logical_not(same, out=same)
            ctc[same] = 0

            if p.is_store:
                # Write buffer retires the store after commit (before
                # the hook sees the instruction, as on the scalar path).
                code = shared.lookup_code(result.mem_addr, store_kind)
                if code != L1_HIT:
                    for b in live:
                        lane_mem[b].latency_for_code(
                            code, float(commit[b]), store_kind)

            # ---- the MEEK hook (genuinely per-lane) ------------------
            trap = result.trap
            if p.needs_entry or trap is not None:
                record = classify(result)
                if record is None:
                    rkind, addr, data, size = None, 0, 0, 0
                    template = None
                else:
                    rkind, addr, data, size = record
                    # The record fields are lane-invariant (faults
                    # corrupt forwarded copies downstream), so build
                    # one template — paying the parity computation
                    # once — and hand each lane its own copy to
                    # corrupt/buffer/compare independently.
                    template = RuntimeEntry(rkind, addr, data, size)
                for b in tuple(live):
                    try:
                        if check_forced and self._should_force_evict(b, index):
                            raise _ForcedEviction
                        ctrl = controllers[b]
                        hot = ctrl._hot
                        hot[0] = int(hot0[b])
                        newc = ctrl.fast_commit(
                            index, pc, float(commit[b]), int(ctc[b]), trap,
                            rkind, addr, data, size,
                            prebuilt=(None if template is None
                                      else template.copy()))
                        if newc > commit[b]:
                            ctc[b] = 0
                            commit[b] = newc
                        hot0[b] = hot[0]
                        hot1[b] = hot[1]
                    except _ForcedEviction:
                        self._evict(b, "forced")
                    except Exception:
                        self._evict(b, "hook-error")
            else:
                np.add(hot0, 1, out=absorbed)
                np.greater_equal(absorbed, hot1, out=fire)
                if fire.any():
                    # Firing lanes keep their count (the hook writes it
                    # back); the rest absorb this dormant commit.
                    np.less(absorbed, hot1, out=same)
                    np.copyto(hot0, absorbed, where=same)
                    for b in tuple(live):
                        if not fire[b]:
                            continue
                        try:
                            if (check_forced
                                    and self._should_force_evict(b, index)):
                                raise _ForcedEviction
                            ctrl = controllers[b]
                            hot = ctrl._hot
                            hot[0] = int(hot0[b])
                            newc = ctrl.fast_commit(
                                index, pc, float(commit[b]), int(ctc[b]),
                                None, None, 0, 0, 0)
                            if newc > commit[b]:
                                ctc[b] = 0
                                commit[b] = newc
                            hot0[b] = hot[0]
                            hot1[b] = hot[1]
                        except _ForcedEviction:
                            self._evict(b, "forced")
                        except Exception:
                            self._evict(b, "hook-error")
                else:
                    # Every lane absorbed: swap the buffers instead of
                    # copying absorbed counts back.
                    hot0, absorbed = absorbed, hot0

            last_commit = commit
            ctc += 1

            # ---- bookkeeping -----------------------------------------
            rob.append(commit)
            iq.append(issue)
            if p.is_load:
                ldq.append(commit)
            elif p.is_store:
                stq.append(commit)
            if p.writes_int and p.rd:
                int_ready[p.rd] = complete
                int_writers.append(commit)
            if p.writes_fp:
                fp_ready[p.rd] = complete
                fp_writers.append(commit)

            occupancy_sum += len(live)
            index += 1
            if trap is not None:
                halted_by = trap
                break

        self._occupancy_sum = occupancy_sum
        return self._finish(index, last_commit, hot0, halted_by)

    # -- teardown ----------------------------------------------------------

    def _finish(self, instructions, last_commit, hot0, halted_by):
        from repro.bigcore.core import RunResult
        predictor_stats = self.predictor.stats()
        memory_stats = self.shared_mem.stats()
        results = [None] * self.lanes
        for b in tuple(self.live):
            cycles = float(last_commit[b])
            controller = self.controllers[b]
            controller._hot[0] = int(hot0[b])
            big = RunResult(
                instructions=instructions, cycles=cycles, state=self.state,
                predictor_stats=predictor_stats, memory_stats=memory_stats,
                halted_by=halted_by)
            try:
                results[b] = self.systems[b].finish(big)
            except Exception:
                self._evict(b, "finalize-error")
        denominator = max(1, instructions) * self.lanes
        stats = {
            "lanes": self.lanes,
            "instructions": instructions,
            "occupancy": self._occupancy_sum / denominator,
            "evictions": dict(self.eviction_counts),
        }
        return BatchOutcome(results, list(self.evicted), stats)
