"""The warm-path execution service.

Every CLI invocation used to be an island: a fresh interpreter, a cold
maker table, a worker pool forked and torn down per campaign.  This
module is the long-lived counterpart — one per process — that the CLI,
the figure drivers, the difftest harness and ``repro batch`` all share:

* :meth:`ExecutionService.warm` pre-imports the simulator and primes
  every stepper maker (from the persistent disk cache when one exists,
  compiling — and populating it — otherwise), so the first simulation
  of the process runs at warm-cache speed;
* :meth:`ExecutionService.pool` owns a persistent
  :class:`~repro.campaign.executor.WorkerPool`: forked once, workers
  pre-import and pre-warm, and every subsequent campaign streams its
  points over the existing queues instead of paying pool startup —
  back-to-back campaigns (a figure driver's sweeps, a difftest run, a
  batch script) reuse the same shards;
* :meth:`ExecutionService.run_campaign` is
  :func:`repro.campaign.run_campaign` routed through that pool.

The service is deliberately *not* a daemon across OS processes — the
persistent state that matters (compiled stepper code objects) lives on
disk in :mod:`repro.perf.cache` and survives process exit; everything
else is cheap once the steppers are warm.
"""

import atexit


class ExecutionService:
    """Process-wide warm execution context (see module docstring)."""

    def __init__(self):
        self._pool = None
        self._warmed = False
        self._atexit_registered = False

    # -- warm-up -----------------------------------------------------------

    def warm(self):
        """Pre-import the simulator and prime the stepper caches.

        Idempotent; returns the number of makers primed on the first
        call (0 afterwards).  With a warm disk cache this is
        unmarshal-only; cold, it pays the compiles once and persists
        them for every future process.
        """
        if self._warmed:
            return 0
        self._warmed = True
        from repro.obs.events import event_log
        with event_log().span("service_warm"):
            import repro.campaign.tasks  # noqa: F401 — registers tasks
            import repro.core.system    # noqa: F401
            import repro.difftest.harness  # noqa: F401
            from repro.perf.cache import stepper_cache
            from repro.perf.jit import prime_steppers
            primed = prime_steppers()
            # Persist immediately: concurrent workers forked a moment
            # later should find a warm file rather than re-compiling.
            stepper_cache().flush()
        return primed

    # -- the persistent pool -----------------------------------------------

    def pool(self, jobs):
        """The persistent worker pool, (re)built for ``jobs`` shards.

        Reused across campaigns while the shard count matches and every
        shard is alive; ``jobs <= 1`` returns ``None`` (serial
        execution needs no pool).
        """
        from repro.campaign.executor import WorkerPool, default_jobs

        jobs = default_jobs(jobs)
        if jobs <= 1:
            return None
        if self._pool is not None and (self._pool.jobs != jobs
                                       or not self._pool.healthy):
            self._pool.close()
            self._pool = None
        if self._pool is None:
            from repro.obs.events import event_log
            self.warm()  # fork from a warm parent: shards inherit it
            with event_log().span("pool_build", jobs=jobs):
                self._pool = WorkerPool(jobs, warm=True)
            if not self._atexit_registered:
                self._atexit_registered = True
                atexit.register(self.shutdown)
        return self._pool

    def pool_info(self):
        """A snapshot of the persistent pool (``None`` when no pool is
        up): shard count, child pids, and health — what ``repro
        serve`` reports to clients (and what the fault-injection tests
        aim their SIGKILLs at)."""
        if self._pool is None:
            return None
        return {"jobs": self._pool.jobs, "pids": self._pool.pids,
                "healthy": self._pool.healthy}

    def run_campaign(self, spec, jobs=None, **kwargs):
        """:func:`repro.campaign.run_campaign` through the warm pool.

        The pool is supplied as a factory, so a campaign that turns
        out to have nothing (or one point) pending — e.g. a fully
        resumed run — never forks workers at all.
        """
        from repro.campaign.executor import run_campaign

        return run_campaign(spec, jobs=jobs,
                            pool=lambda: self.pool(jobs), **kwargs)

    def shutdown(self):
        """Close the pool (the service itself stays usable)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None


_service = None


def get_service():
    """The process-wide :class:`ExecutionService` singleton."""
    global _service
    if _service is None:
        _service = ExecutionService()
    return _service


def reset_service():
    """Tear down the singleton (tests)."""
    global _service
    if _service is not None:
        _service.shutdown()
    _service = None
