"""Benchmark-regression harness.

Compares a fresh ``repro bench`` result against the committed
``BENCH_perf.json`` baseline so nothing can silently give back the
fast-kernel speedup:

* **Throughput floors** — every recorded ``instrs_per_s`` must stay
  within ``tolerance`` of the baseline (machine-dependent, so the
  default tolerance is generous; CI can tighten or loosen it).
* **Kernel-speedup floor** — the fast-vs-slow kernel ratio is measured
  in-process and is therefore (nearly) machine-independent; losing it
  means the decoded kernel itself regressed, not the hardware.
* **Warm-path ratio floors** — cold-vs-warm CLI start, batch-vs-
  individual invocation, and persistent-vs-ephemeral campaign pool are
  recorded as speedup *ratios* measured on one machine in one run, so
  they survive slow shared runners; each gets a floor of
  ``baseline * (1 - kernel_tolerance)`` (no clamp to 1.0 — these
  ratios can legitimately sit near parity on some machines, and a
  clamped floor would flake there).

``repro bench --check`` drives :func:`check_regression` and exits
non-zero on any violation.
"""

import json

from repro.perf.bench import BENCH_SCHEMA

#: Warm-path sections whose speedup ratios get regression floors.
_RATIO_METRICS = (
    ("warm_start", "warm_speedup"),
    ("batch", "batch_speedup"),
    ("campaign", "pool_speedup"),
    ("batch_kernel", "batch_speedup"),
)


class Violation:
    """One benchmark-regression finding."""

    __slots__ = ("metric", "baseline", "current", "floor")

    def __init__(self, metric, baseline, current, floor):
        self.metric = metric
        self.baseline = baseline
        self.current = current
        self.floor = floor

    def __str__(self):
        return (f"{self.metric}: {self.current:,.2f} below floor "
                f"{self.floor:,.2f} (baseline {self.baseline:,.2f})")


def load_baseline(path):
    """Load and sanity-check a committed baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if not isinstance(baseline, dict) or "workloads" not in baseline:
        raise ValueError(f"{path}: not a BENCH_perf baseline")
    schema = baseline.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(f"{path}: schema {schema!r} unsupported "
                         f"(expected {BENCH_SCHEMA})")
    return baseline


def check_regression(current, baseline, tolerance=0.5,
                     kernel_tolerance=0.5):
    """Return the list of :class:`Violation` (empty = no regression).

    ``tolerance`` is the allowed fractional drop for wall-clock
    throughput metrics; ``kernel_tolerance`` for the fast/slow kernel
    speedup ratios.  A metric present in the baseline but missing from
    ``current`` is a violation (floor of the baseline value itself).
    """
    violations = []

    for workload, systems in baseline.get("workloads", {}).items():
        current_systems = current.get("workloads", {}).get(workload, {})
        for system, metrics in systems.items():
            base_rate = metrics.get("instrs_per_s")
            if not base_rate:
                continue
            floor = base_rate * (1.0 - tolerance)
            got = current_systems.get(system, {}).get("instrs_per_s", 0.0)
            if got < floor:
                violations.append(Violation(
                    f"{workload}/{system} instrs_per_s",
                    base_rate, got, floor))

    base_kernels = baseline.get("kernels")
    cur_kernels = current.get("kernels") or {}
    if base_kernels:
        for ratio in ("meek_speedup", "vanilla_speedup"):
            base_ratio = base_kernels.get(ratio)
            if not base_ratio:
                continue
            # A speedup of 1.0 means "no faster than the naive loop";
            # the floor never drops below that.
            floor = max(1.0, base_ratio * (1.0 - kernel_tolerance))
            got = cur_kernels.get(ratio, 0.0)
            if got < floor:
                violations.append(Violation(
                    f"kernels/{ratio}", base_ratio, got, floor))

    for section, key in _RATIO_METRICS:
        base_ratio = (baseline.get(section) or {}).get(key)
        if not base_ratio:
            continue
        cur_section = current.get(section)
        if not cur_section:
            # Section not measured this run (--skip-warm-start /
            # --skip-campaign): nothing to compare, not a regression.
            continue
        floor = base_ratio * (1.0 - kernel_tolerance)
        got = cur_section.get(key, 0.0)
        if got < floor:
            violations.append(Violation(
                f"{section}/{key}", base_ratio, got, floor))
    return violations


def format_check(violations, baseline_path):
    if not violations:
        return f"bench check   : OK (no regression vs {baseline_path})"
    lines = [f"bench check   : {len(violations)} regression(s) "
             f"vs {baseline_path}"]
    lines.extend(f"  REGRESSION  : {violation}" for violation in violations)
    return "\n".join(lines)


def write_result(result, path):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
