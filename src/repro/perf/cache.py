"""Persistent compilation cache: the warm path's disk layer.

Every specialized stepper in this package — the big-core/golden/replay
makers in :mod:`repro.perf.jit` and the decoded-closure makers in
:mod:`repro.perf.decode` — is ``exec``-compiled from generated source.
Within one process the compiled code objects are memoized in module
dicts, but a fresh CLI invocation used to pay the whole
assemble-source-and-``compile()`` bill again before the first
instruction could step.

:class:`CodeCache` memoizes those code objects **on disk** (``marshal``
format), so every invocation after the first starts warm:

* **Location** — ``$REPRO_CACHE_DIR`` if set, else
  ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.
  ``REPRO_NO_DISK_CACHE=1`` disables the layer entirely (the in-process
  caches still work; everything just compiles once per process).
* **Keying** — the cache *file name* carries a fingerprint digest of
  the generator inputs: the source bytes of ``ops.py`` / ``jit.py`` /
  ``decode.py`` plus the ISA tables they bake in
  (``isa/instructions.py``, ``isa/semantics.py``), the Python feature
  version, and the bytecode magic number.  Editing the expression
  table, a stepper template, an instruction spec, or upgrading Python
  changes the digest, so stale entries are invalidated
  wholesale by construction — no entry-level versioning to get wrong.
  Within a file, entries are keyed by maker identity (``"big:add:fast"``,
  ``"decode:ld"``, ...); per-program and per-config specialization
  happens when the maker is *called*, so the cached artifact is valid
  for every program and config.
* **Corruption safety** — a truncated, garbled, or wrong-format cache
  file is indistinguishable from a cold cache: every read is guarded
  and falls back to recompiling (and then overwrites the bad file).
* **Concurrent writers** — campaign workers all warm up at once.
  Writes go through a same-directory temp file + :func:`os.replace`
  (atomic on POSIX), and each flush first re-reads and merges the
  current file, so parallel writers union their entries rather than
  truncating each other; a lost race costs a recompile, never a crash.
"""

import atexit
import importlib.util
import marshal
import os
import sys
import tempfile
from hashlib import blake2b

CACHE_SCHEMA = 1

_MAGIC = b"RPRC\x01"


def disk_cache_enabled():
    """Whether the persistent layer is active (``REPRO_NO_DISK_CACHE``
    unset)."""
    return os.environ.get("REPRO_NO_DISK_CACHE", "") in ("", "0")


def cache_dir():
    """The cache directory (not created until first write)."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return os.path.join(xdg, "repro")
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def _generator_sources():
    """Source bytes of the modules whose text shapes every generated
    stepper: the ops expression table and both template assemblers,
    plus the ISA tables the generators bake in at compile time (SPECS
    flags, load/store sizes, trap sets)."""
    blobs = []
    for name in ("repro.perf.ops", "repro.perf.decode", "repro.perf.jit",
                 "repro.isa.instructions", "repro.isa.semantics"):
        spec = importlib.util.find_spec(name)
        source = b""
        if spec is not None and spec.origin and os.path.exists(spec.origin):
            with open(spec.origin, "rb") as handle:
                source = handle.read()
        blobs.append(source)
    return blobs


def source_fingerprint(extra=b""):
    """Digest of everything that can change the generated code."""
    digest = blake2b(digest_size=10)
    digest.update(f"schema={CACHE_SCHEMA}".encode())
    digest.update(f"py={sys.version_info[:2]}".encode())
    digest.update(importlib.util.MAGIC_NUMBER)
    for blob in _generator_sources():
        digest.update(b"\x00")
        digest.update(blob)
    digest.update(extra)
    return digest.hexdigest()


class CodeCache:
    """One on-disk dict of ``key -> code object`` (lazy, merged,
    atomic).

    All failure modes degrade to a cache miss: the caller compiles as
    if cold and the next flush rewrites a healthy file.
    """

    def __init__(self, path):
        self.path = path
        self._entries = {}
        self._loaded = False
        self._dirty = False
        self._flush_registered = False

    # -- reading -----------------------------------------------------------

    @staticmethod
    def _read_entries(path):
        """Parse one cache file; {} on any corruption or mismatch."""
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
            if not blob.startswith(_MAGIC):
                return {}
            entries = marshal.loads(blob[len(_MAGIC):])
            if not isinstance(entries, dict):
                return {}
            # Every key must map to a real code object; a partial write
            # that survived the marshal parse still gets rejected here.
            for key, code in entries.items():
                if not isinstance(key, str) or not hasattr(code, "co_code"):
                    return {}
            return entries
        except (OSError, EOFError, ValueError, TypeError):
            return {}

    def _ensure_loaded(self):
        if not self._loaded:
            self._entries = self._read_entries(self.path)
            self._loaded = True

    def get(self, key):
        """The cached code object for ``key``, or ``None``."""
        self._ensure_loaded()
        return self._entries.get(key)

    def __len__(self):
        self._ensure_loaded()
        return len(self._entries)

    # -- writing -----------------------------------------------------------

    def put(self, key, code):
        """Record ``key -> code``; persisted at the next flush (an
        ``atexit`` flush is registered automatically)."""
        self._ensure_loaded()
        self._entries[key] = code
        self._dirty = True
        if not self._flush_registered:
            self._flush_registered = True
            atexit.register(self.flush)

    def flush(self):
        """Merge-and-write the cache file atomically; never raises."""
        if not self._dirty:
            return False
        try:
            merged = dict(self._read_entries(self.path))
            merged.update(self._entries)
            payload = _MAGIC + marshal.dumps(merged)
            directory = os.path.dirname(self.path) or "."
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(dir=directory,
                                             prefix=".cache-", suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(temp_path, self.path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
            self._entries = merged
            self._dirty = False
            return True
        except (OSError, ValueError):
            # A read-only or vanished cache dir must never take the
            # simulation down; the warm path is an optimization.
            return False


class _NullCache:
    """The disabled cache: every lookup misses, writes vanish."""

    path = None

    def get(self, key):
        return None

    def put(self, key, code):
        pass

    def flush(self):
        return False

    def __len__(self):
        return 0


_stepper_cache = None


def stepper_cache():
    """The process-wide persistent stepper cache (or the null cache
    when disabled)."""
    global _stepper_cache
    if _stepper_cache is None:
        if disk_cache_enabled():
            name = f"steppers-{source_fingerprint()}.marshal"
            _stepper_cache = CodeCache(os.path.join(cache_dir(), name))
        else:
            _stepper_cache = _NullCache()
    return _stepper_cache


def reset_stepper_cache():
    """Drop the process-wide handle (tests; env-var changes)."""
    global _stepper_cache
    if _stepper_cache is not None:
        _stepper_cache.flush()
    _stepper_cache = None


def cached_compile(key, build_source, filename):
    """``compile()`` with the persistent layer in front.

    ``build_source`` is only invoked on a disk miss, so a warm start
    skips both the source assembly and the parse/codegen.

    Every lookup counts into the ``cache.hits``/``cache.misses``
    observability counters and (when ``$REPRO_EVENTS`` is set) emits a
    ``cache_hit``/``cache_miss`` event.  This fires once per *maker
    compilation* — dozens of times per process lifetime, never on the
    per-instruction path — so the instrumentation is free where it
    matters.
    """
    from repro.obs.events import event_log
    from repro.obs.metrics import get_registry

    cache = stepper_cache()
    registry = get_registry()
    code = cache.get(key)
    if code is None:
        registry.counter("cache.misses").inc()
        event_log().emit("cache_miss", key=key)
        code = compile(build_source(), filename, "exec")
        cache.put(key, code)
    else:
        registry.counter("cache.hits").inc()
        event_log().emit("cache_hit", key=key)
    return code
