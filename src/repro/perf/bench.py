"""The ``repro bench`` suite.

Measures wall-clock simulation throughput — instructions per second —
for every execution system (golden ISA model, vanilla big core, MEEK
system, Nzdc baseline, standalone little core), the wall time of one
figure driver, and the fast-vs-slow kernel speedup measured in-process
(the machine-independent number the regression harness locks in).

The result is a plain dict, written to ``BENCH_perf.json`` by the CLI;
:mod:`repro.perf.regress` compares it against the committed baseline.
Every measured simulation is deterministic — only the wall clock
varies between runs, which is why each sample takes the best of
``repeat`` runs.
"""

import os
import time

BENCH_SCHEMA = 1

#: Default workloads: one FP-heavy PARSEC profile, one pointer-chasing
#: SPECint profile, one streaming profile — the three memory behaviours
#: that stress different parts of the timing model.
DEFAULT_WORKLOADS = ("swaptions", "mcf", "streamcluster")

DEFAULT_FIGURES = ("fig7",)


def _best(fn, repeat):
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best, result


def _throughput(instructions, wall_s):
    return instructions / wall_s if wall_s > 0 else 0.0


def _bench_workload(name, instructions, seed, cores, repeat):
    from repro.baselines.nzdc import run_nzdc
    from repro.common.config import default_meek_config
    from repro.core.system import MeekSystem, run_vanilla, slowdown
    from repro.difftest.golden import run_golden
    from repro.littlecore.core import LittleCore
    from repro.workloads import generate_program, get_profile

    program = generate_program(get_profile(name),
                               dynamic_instructions=instructions, seed=seed)
    systems = {}

    wall, golden = _best(lambda: run_golden(program), repeat)
    systems["golden"] = {
        "wall_s": wall,
        "instructions": golden.instructions,
        "instrs_per_s": _throughput(golden.instructions, wall),
    }

    wall, vanilla = _best(lambda: run_vanilla(program), repeat)
    systems["vanilla"] = {
        "wall_s": wall,
        "instructions": vanilla.instructions,
        "instrs_per_s": _throughput(vanilla.instructions, wall),
        "ipc": vanilla.ipc,
    }

    config = default_meek_config(num_little_cores=cores)
    wall, meek = _best(lambda: MeekSystem(config).run(program), repeat)
    systems["meek"] = {
        "wall_s": wall,
        "instructions": meek.instructions,
        "instrs_per_s": _throughput(meek.instructions, wall),
        "slowdown": slowdown(meek, vanilla),
        "all_verified": meek.all_segments_verified,
    }

    wall, nzdc = _best(lambda: run_nzdc(program), repeat)
    nzdc_result = nzdc[0]
    systems["nzdc"] = {
        "wall_s": wall,
        "instructions": nzdc_result.instructions,
        "instrs_per_s": _throughput(nzdc_result.instructions, wall),
    }

    wall, little = _best(lambda: LittleCore().run(program), repeat)
    systems["littlecore"] = {
        "wall_s": wall,
        "instructions": little.instructions,
        "instrs_per_s": _throughput(little.instructions, wall),
    }
    return systems


def _bench_kernels(workload, instructions, seed, cores, repeat):
    """Fast-vs-slow kernel speedup, measured in one process.

    This ratio is (nearly) machine-independent, which makes it the
    robust metric for CI: a change that quietly loses the decoded-
    kernel speedup shows up here no matter how slow the runner is.
    """
    from repro.common.config import default_meek_config
    from repro.core.system import MeekSystem, run_vanilla
    from repro.workloads import generate_program, get_profile

    program = generate_program(get_profile(workload),
                               dynamic_instructions=instructions, seed=seed)
    config = default_meek_config(num_little_cores=cores)
    previous = os.environ.get("REPRO_SLOW_KERNEL")
    try:
        os.environ["REPRO_SLOW_KERNEL"] = "0"
        fast_vanilla, _ = _best(lambda: run_vanilla(program), repeat)
        fast_meek, fast_result = _best(
            lambda: MeekSystem(config).run(program), repeat)
        os.environ["REPRO_SLOW_KERNEL"] = "1"
        slow_vanilla, _ = _best(lambda: run_vanilla(program), repeat)
        slow_meek, slow_result = _best(
            lambda: MeekSystem(config).run(program), repeat)
    finally:
        if previous is None:
            os.environ.pop("REPRO_SLOW_KERNEL", None)
        else:
            os.environ["REPRO_SLOW_KERNEL"] = previous
    if (fast_result.cycles != slow_result.cycles
            or fast_result.instructions != slow_result.instructions):
        raise AssertionError(
            "fast/slow kernels disagree on cycles — equivalence broken")
    return {
        "workload": workload,
        "instructions": instructions,
        "fast_vanilla_s": fast_vanilla,
        "slow_vanilla_s": slow_vanilla,
        "vanilla_speedup": slow_vanilla / fast_vanilla,
        "fast_meek_s": fast_meek,
        "slow_meek_s": slow_meek,
        "meek_speedup": slow_meek / fast_meek,
    }


def _bench_figures(figures, instructions):
    """Wall time of each requested figure driver (single-job)."""
    from repro.experiments import (ablations, fig6_performance, fig7_latency,
                                   fig8_scalability, fig9_backpressure,
                                   fig10_perf_area, tab3_area)
    modules = {
        "fig6": fig6_performance,
        "fig7": fig7_latency,
        "fig8": fig8_scalability,
        "fig9": fig9_backpressure,
        "fig10": fig10_perf_area,
        "tab3": tab3_area,
        "ablations": ablations,
    }
    results = {}
    for name in figures:
        module = modules[name]
        t0 = time.perf_counter()
        if name == "tab3":
            module.run(jobs=1)
        else:
            module.run(dynamic_instructions=instructions, jobs=1)
        results[name] = {"wall_s": time.perf_counter() - t0,
                         "instructions": instructions}
    return results


def run_bench(workloads=DEFAULT_WORKLOADS, instructions=20_000, seed=0,
              cores=4, repeat=3, figures=DEFAULT_FIGURES,
              figure_instructions=2_000, kernels=True, log=None):
    """Run the benchmark suite; returns the BENCH_perf dict."""
    from repro.perf.decode import slow_kernel_enabled

    def say(msg):
        if log is not None:
            log(msg)

    result = {
        "schema": BENCH_SCHEMA,
        "config": {
            "instructions": instructions,
            "seed": seed,
            "cores": cores,
            "repeat": repeat,
            "kernel": "slow" if slow_kernel_enabled() else "fast",
        },
        "workloads": {},
        "figures": {},
        "kernels": None,
    }
    for name in workloads:
        say(f"bench {name} ({instructions} instrs x{repeat})")
        result["workloads"][name] = _bench_workload(
            name, instructions, seed, cores, repeat)
    if kernels and workloads:
        say("bench kernels (fast vs REPRO_SLOW_KERNEL=1)")
        result["kernels"] = _bench_kernels(
            workloads[0], instructions, seed, cores, repeat)
    if figures:
        say(f"bench figure drivers {', '.join(figures)}")
        result["figures"] = _bench_figures(figures, figure_instructions)
    return result


def format_bench(result):
    """Human-readable table of one bench result."""
    from repro.analysis.report import format_table

    rows = []
    for workload, systems in result["workloads"].items():
        for system, metrics in systems.items():
            rows.append([
                workload, system,
                f"{metrics['instrs_per_s']:,.0f}",
                f"{metrics['wall_s'] * 1e3:.1f}",
            ])
    out = [format_table(["workload", "system", "instrs/sec", "wall (ms)"],
                        rows, title="Simulation throughput")]
    kernels = result.get("kernels")
    if kernels:
        out.append(
            f"kernel speedup ({kernels['workload']}): "
            f"meek {kernels['meek_speedup']:.2f}x, "
            f"vanilla {kernels['vanilla_speedup']:.2f}x "
            "(fast vs REPRO_SLOW_KERNEL=1)")
    for name, metrics in result.get("figures", {}).items():
        out.append(f"figure {name}: {metrics['wall_s']:.2f}s wall")
    return "\n".join(out)
