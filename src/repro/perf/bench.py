"""The ``repro bench`` suite.

Measures wall-clock simulation throughput — instructions per second —
for every execution system (golden ISA model, vanilla big core, MEEK
system, Nzdc baseline, standalone little core), the wall time of one
figure driver, and the fast-vs-slow kernel speedup measured in-process
(the machine-independent number the regression harness locks in).

Warm-path metrics (schema 2) cover the execution service:

* **warm_start** — full ``repro run`` CLI wall, cold (empty stepper
  disk cache) vs warm (cache populated by the cold run), measured in
  real subprocesses;
* **batch** — the same commands as individual CLI invocations vs one
  ``repro batch`` process (shared interpreter, caches, and pool);
* **campaign** — back-to-back campaigns through per-campaign ephemeral
  worker pools vs one persistent pre-warmed pool.

Batched-kernel metrics (schema 3):

* **batch_kernel** — campaign points/s through the lockstep batch
  kernel (:mod:`repro.perf.batch`) vs the scalar per-point campaign
  loop it replaced (program rebuilt per point, no segment memo), on a
  fig7-style inject grid.  Ratios take the *median* rep per side —
  the two sides run interleaved, and best-of would reward whichever
  side caught the quietest scheduler moment.

The absolute walls are machine-dependent; the speedup *ratios* are the
regression-stable numbers :mod:`repro.perf.regress` puts floors under.

The result is a plain dict, written to ``BENCH_perf.json`` by the CLI;
:mod:`repro.perf.regress` compares it against the committed baseline.
Every measured simulation is deterministic — only the wall clock
varies between runs, which is why each sample takes the best of
``repeat`` runs.
"""

import os
import subprocess
import sys
import tempfile
import time

BENCH_SCHEMA = 3

#: Default workloads: one FP-heavy PARSEC profile, one pointer-chasing
#: SPECint profile, one streaming profile — the three memory behaviours
#: that stress different parts of the timing model.
DEFAULT_WORKLOADS = ("swaptions", "mcf", "streamcluster")

DEFAULT_FIGURES = ("fig7",)


def _best(fn, repeat):
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best, result


def _throughput(instructions, wall_s):
    return instructions / wall_s if wall_s > 0 else 0.0


def _bench_workload(name, instructions, seed, cores, repeat):
    from repro.baselines.nzdc import run_nzdc
    from repro.common.config import default_meek_config
    from repro.core.system import MeekSystem, run_vanilla, slowdown
    from repro.difftest.golden import run_golden
    from repro.littlecore.core import LittleCore
    from repro.workloads import generate_program, get_profile

    program = generate_program(get_profile(name),
                               dynamic_instructions=instructions, seed=seed)
    systems = {}

    wall, golden = _best(lambda: run_golden(program), repeat)
    systems["golden"] = {
        "wall_s": wall,
        "instructions": golden.instructions,
        "instrs_per_s": _throughput(golden.instructions, wall),
    }

    wall, vanilla = _best(lambda: run_vanilla(program), repeat)
    systems["vanilla"] = {
        "wall_s": wall,
        "instructions": vanilla.instructions,
        "instrs_per_s": _throughput(vanilla.instructions, wall),
        "ipc": vanilla.ipc,
    }

    config = default_meek_config(num_little_cores=cores)
    wall, meek = _best(lambda: MeekSystem(config).run(program), repeat)
    systems["meek"] = {
        "wall_s": wall,
        "instructions": meek.instructions,
        "instrs_per_s": _throughput(meek.instructions, wall),
        "slowdown": slowdown(meek, vanilla),
        "all_verified": meek.all_segments_verified,
    }

    wall, nzdc = _best(lambda: run_nzdc(program), repeat)
    nzdc_result = nzdc[0]
    systems["nzdc"] = {
        "wall_s": wall,
        "instructions": nzdc_result.instructions,
        "instrs_per_s": _throughput(nzdc_result.instructions, wall),
    }

    wall, little = _best(lambda: LittleCore().run(program), repeat)
    systems["littlecore"] = {
        "wall_s": wall,
        "instructions": little.instructions,
        "instrs_per_s": _throughput(little.instructions, wall),
    }
    return systems


def _bench_kernels(workload, instructions, seed, cores, repeat):
    """Fast-vs-slow kernel speedup, measured in one process.

    This ratio is (nearly) machine-independent, which makes it the
    robust metric for CI: a change that quietly loses the decoded-
    kernel speedup shows up here no matter how slow the runner is.
    """
    from repro.common.config import default_meek_config
    from repro.core.system import MeekSystem, run_vanilla
    from repro.workloads import generate_program, get_profile

    program = generate_program(get_profile(workload),
                               dynamic_instructions=instructions, seed=seed)
    config = default_meek_config(num_little_cores=cores)
    previous = os.environ.get("REPRO_SLOW_KERNEL")
    try:
        os.environ["REPRO_SLOW_KERNEL"] = "0"
        fast_vanilla, _ = _best(lambda: run_vanilla(program), repeat)
        fast_meek, fast_result = _best(
            lambda: MeekSystem(config).run(program), repeat)
        os.environ["REPRO_SLOW_KERNEL"] = "1"
        slow_vanilla, _ = _best(lambda: run_vanilla(program), repeat)
        slow_meek, slow_result = _best(
            lambda: MeekSystem(config).run(program), repeat)
    finally:
        if previous is None:
            os.environ.pop("REPRO_SLOW_KERNEL", None)
        else:
            os.environ["REPRO_SLOW_KERNEL"] = previous
    if (fast_result.cycles != slow_result.cycles
            or fast_result.instructions != slow_result.instructions):
        raise AssertionError(
            "fast/slow kernels disagree on cycles — equivalence broken")
    return {
        "workload": workload,
        "instructions": instructions,
        "fast_vanilla_s": fast_vanilla,
        "slow_vanilla_s": slow_vanilla,
        "vanilla_speedup": slow_vanilla / fast_vanilla,
        "fast_meek_s": fast_meek,
        "slow_meek_s": slow_meek,
        "meek_speedup": slow_meek / fast_meek,
    }


def _cli_env(cache_dir):
    """Environment for a ``python -m repro`` child: importable package
    plus an isolated stepper disk cache."""
    import repro
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_dir if not existing
                         else src_dir + os.pathsep + existing)
    env["REPRO_CACHE_DIR"] = cache_dir
    env.pop("REPRO_NO_DISK_CACHE", None)
    return env


def _timed_cli(argv, env):
    t0 = time.perf_counter()
    proc = subprocess.run([sys.executable, "-m", "repro"] + argv, env=env,
                          stdout=subprocess.DEVNULL,
                          stderr=subprocess.DEVNULL)
    wall = time.perf_counter() - t0
    if proc.returncode != 0:
        raise RuntimeError(f"bench CLI child failed: repro {' '.join(argv)} "
                           f"-> exit {proc.returncode}")
    return wall


def _bench_warm_start(workload, instructions, repeat):
    """Cold-vs-warm ``repro run`` wall through real subprocesses.

    Cold = first invocation against an empty stepper disk cache (pays
    source assembly + compile + cache write); warm = best of ``repeat``
    further invocations against the cache the cold run left behind.
    """
    argv = ["run", workload, "--instructions", str(instructions)]
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:
        env = _cli_env(cache)
        cold = _timed_cli(argv, env)
        warm = min(_timed_cli(argv, env) for _ in range(max(1, repeat)))
    return {
        "workload": workload,
        "instructions": instructions,
        "cold_wall_s": cold,
        "warm_wall_s": warm,
        "warm_speedup": cold / warm if warm > 0 else 0.0,
    }


def _bench_batch(workload, instructions, commands=4):
    """N individual CLI invocations vs one ``repro batch`` process."""
    lines = [f"run {workload} --instructions {instructions} --seed {seed}"
             for seed in range(commands)]
    with tempfile.TemporaryDirectory(prefix="repro-bench-batch-") as work:
        env = _cli_env(os.path.join(work, "cache"))
        script = os.path.join(work, "commands.txt")
        with open(script, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        # One throwaway run warms the disk cache so both sides measure
        # steady state rather than the one-off compile.
        _timed_cli(["run", workload, "--instructions", str(instructions)],
                   env)
        individual = sum(_timed_cli(line.split(), env) for line in lines)
        batch = _timed_cli(["batch", script], env)
    return {
        "workload": workload,
        "instructions": instructions,
        "commands": commands,
        "individual_wall_s": individual,
        "batch_wall_s": batch,
        "batch_speedup": individual / batch if batch > 0 else 0.0,
    }


def _bench_campaign(workload, instructions, seed, jobs=2, campaigns=4,
                    points=12):
    """Back-to-back campaigns: ephemeral pools vs one persistent pool.

    The ephemeral side forks and tears down a worker pool per campaign
    (the classic behaviour); the persistent side streams every
    campaign through one pre-warmed :class:`WorkerPool` — the
    execution-service architecture.  Identical points on both sides.
    ``points`` must be large enough that the warm pool's amortization
    is visible over per-campaign noise — at 6 points per campaign the
    fork cost was a rounding error and the recorded speedup sat at
    parity, underselling the pool the service actually keeps.
    """
    from repro.campaign.executor import WorkerPool, run_campaign
    from repro.campaign.spec import CampaignPoint, CampaignSpec

    def specs():
        return [
            CampaignSpec(
                name=f"bench-pool-{campaign}",
                points=[
                    CampaignPoint(task="meek", workload=workload,
                                  instructions=instructions, seed=seed,
                                  params={"trial": trial,
                                          "campaign": campaign})
                    for trial in range(points)])
            for campaign in range(campaigns)]

    t0 = time.perf_counter()
    for spec in specs():
        run_campaign(spec, jobs=jobs)  # forks an ephemeral pool each time
    ephemeral = time.perf_counter() - t0

    with WorkerPool(jobs, warm=True) as pool:
        # One sacrificial campaign absorbs the pool's own startup, so
        # the timed region measures the steady reuse the service sees.
        run_campaign(specs()[0], pool=pool)
        t0 = time.perf_counter()
        for spec in specs():
            run_campaign(spec, pool=pool)
        persistent = time.perf_counter() - t0

    total_points = campaigns * points
    return {
        "workload": workload,
        "instructions": instructions,
        "jobs": jobs,
        "campaigns": campaigns,
        "points": total_points,
        "ephemeral_wall_s": ephemeral,
        "persistent_wall_s": persistent,
        "pool_speedup": ephemeral / persistent if persistent > 0 else 0.0,
        "points_per_s": (total_points / persistent if persistent > 0
                         else 0.0),
    }


def _bench_batch_kernel(workload, instructions, seed, lanes=64, reps=3,
                        rate=0.0005, scalar_points=16):
    """Batched lockstep kernel vs the scalar per-point campaign loop.

    Three execution strategies over one fig7-style inject grid
    (``workload`` × distinct trials at injection rate ``rate``):

    * **scalar** — the pre-batch campaign loop: scalar fast kernel,
      program rebuilt per point, segment memo off.  This is the
      baseline the batch kernel's ≥2x claim is measured against.
    * **scalar_memo** — the scalar kernel with this tree's shared
      program cache and segment memo, for attribution: how much of the
      win needs the batch, not just the caches.
    * **batched** — one :func:`repro.campaign.tasks.run_inject_batch`
      call advancing ``lanes`` points in lockstep.

    The sides run interleaved (scalar, scalar_memo, batched, repeat)
    and each records the *median* rep: a ratio of best-ofs rewards
    whichever side caught the quietest scheduler moment, while medians
    of interleaved blocks see the same machine.  A sparse rate is used
    deliberately — it keeps lanes convergent (eviction-free), which is
    the regime campaigns hunting coverage tails run in and where the
    lockstep amortization is fully visible.
    """
    import statistics

    from repro.campaign.spec import CampaignPoint
    from repro.campaign.tasks import (_PROGRAM_CACHE, run_inject_batch,
                                      run_inject_point)
    from repro.core import segmemo

    def grid(count, base_trial):
        return [CampaignPoint(task="inject", workload=workload,
                              instructions=instructions, seed=seed,
                              params={"rate": rate, "trial": trial,
                                      "rng_key": f"{seed}/{workload}/{trial}"})
                for trial in range(base_trial, base_trial + count)]

    previous = os.environ.get("REPRO_NO_SEGMEMO")
    scalar, scalar_memo, batched = [], [], []
    evicted_total = lanes_total = 0
    try:
        # Warm everything both sides share: decoded program, steppers,
        # and the segment-memo store (steady state for a campaign
        # worker that processes many batches of one program).
        os.environ["REPRO_NO_SEGMEMO"] = "0"
        run_inject_point(grid(1, 0)[0], "bench-batch")
        segmemo.clear()
        run_inject_batch(grid(lanes, 1000), "bench-batch")
        trial = 2000
        for _ in range(reps):
            os.environ["REPRO_NO_SEGMEMO"] = "1"
            t0 = time.perf_counter()
            for point in grid(scalar_points, trial):
                _PROGRAM_CACHE.clear()
                run_inject_point(point, "bench-batch")
            scalar.append(scalar_points / (time.perf_counter() - t0))
            trial += scalar_points
            os.environ["REPRO_NO_SEGMEMO"] = "0"
            t0 = time.perf_counter()
            for point in grid(scalar_points, trial):
                run_inject_point(point, "bench-batch")
            scalar_memo.append(scalar_points / (time.perf_counter() - t0))
            trial += scalar_points
            t0 = time.perf_counter()
            _, stats = run_inject_batch(grid(lanes, trial), "bench-batch")
            batched.append(lanes / (time.perf_counter() - t0))
            trial += lanes
            if stats is not None:
                evicted_total += sum(stats["evictions"].values())
                lanes_total += stats["lanes"]
    finally:
        if previous is None:
            os.environ.pop("REPRO_NO_SEGMEMO", None)
        else:
            os.environ["REPRO_NO_SEGMEMO"] = previous
    scalar_rate = statistics.median(scalar)
    batched_rate = statistics.median(batched)
    return {
        "workload": workload,
        "instructions": instructions,
        "rate": rate,
        "lanes": lanes,
        "reps": reps,
        "scalar_points": scalar_points,
        "scalar_points_per_s": scalar_rate,
        "scalar_memo_points_per_s": statistics.median(scalar_memo),
        "batched_points_per_s": batched_rate,
        "batch_speedup": (batched_rate / scalar_rate if scalar_rate > 0
                          else 0.0),
        "eviction_rate": (evicted_total / lanes_total if lanes_total
                          else 0.0),
        "soa_lane_backend": "numpy",
    }


def _bench_figures(figures, instructions):
    """Wall time of each requested figure driver (single-job)."""
    from repro.experiments import (ablations, fig6_performance, fig7_latency,
                                   fig8_scalability, fig9_backpressure,
                                   fig10_perf_area, tab3_area)
    modules = {
        "fig6": fig6_performance,
        "fig7": fig7_latency,
        "fig8": fig8_scalability,
        "fig9": fig9_backpressure,
        "fig10": fig10_perf_area,
        "tab3": tab3_area,
        "ablations": ablations,
    }
    results = {}
    for name in figures:
        module = modules[name]
        t0 = time.perf_counter()
        if name == "tab3":
            module.run(jobs=1)
        else:
            module.run(dynamic_instructions=instructions, jobs=1)
        results[name] = {"wall_s": time.perf_counter() - t0,
                         "instructions": instructions}
    return results


def run_bench(workloads=DEFAULT_WORKLOADS, instructions=20_000, seed=0,
              cores=4, repeat=3, figures=DEFAULT_FIGURES,
              figure_instructions=2_000, kernels=True, warm_start=True,
              campaign=True, campaign_jobs=2, batch_kernel=True, log=None):
    """Run the benchmark suite; returns the BENCH_perf dict."""
    from repro.perf.decode import slow_kernel_enabled

    def say(msg):
        if log is not None:
            log(msg)

    result = {
        "schema": BENCH_SCHEMA,
        "config": {
            "instructions": instructions,
            "seed": seed,
            "cores": cores,
            "repeat": repeat,
            "kernel": "slow" if slow_kernel_enabled() else "fast",
        },
        "workloads": {},
        "figures": {},
        "kernels": None,
        "warm_start": None,
        "batch": None,
        "campaign": None,
        "batch_kernel": None,
    }
    for name in workloads:
        say(f"bench {name} ({instructions} instrs x{repeat})")
        result["workloads"][name] = _bench_workload(
            name, instructions, seed, cores, repeat)
    if kernels and workloads:
        say("bench kernels (fast vs REPRO_SLOW_KERNEL=1)")
        result["kernels"] = _bench_kernels(
            workloads[0], instructions, seed, cores, repeat)
    if warm_start and workloads:
        say("bench warm start (cold vs warm CLI, subprocesses)")
        result["warm_start"] = _bench_warm_start(
            workloads[0], instructions, repeat)
        say("bench batch mode (individual CLIs vs repro batch)")
        result["batch"] = _bench_batch(
            workloads[0], max(1_000, instructions // 4))
    if campaign and workloads:
        say(f"bench campaign pool (ephemeral vs persistent, "
            f"jobs={campaign_jobs})")
        result["campaign"] = _bench_campaign(
            workloads[0], max(1_000, instructions // 10), seed,
            jobs=campaign_jobs)
    if batch_kernel and workloads:
        from repro.perf.batch import batch_available
        if batch_available():
            say("bench batch kernel (lockstep batch vs scalar "
                "campaign loop)")
            result["batch_kernel"] = _bench_batch_kernel(
                workloads[0], instructions, seed)
        else:
            say("bench batch kernel skipped (kernel unavailable)")
    if figures:
        say(f"bench figure drivers {', '.join(figures)}")
        result["figures"] = _bench_figures(figures, figure_instructions)
    return result


def format_bench(result):
    """Human-readable table of one bench result."""
    from repro.analysis.report import format_table

    rows = []
    for workload, systems in result["workloads"].items():
        for system, metrics in systems.items():
            rows.append([
                workload, system,
                f"{metrics['instrs_per_s']:,.0f}",
                f"{metrics['wall_s'] * 1e3:.1f}",
            ])
    out = [format_table(["workload", "system", "instrs/sec", "wall (ms)"],
                        rows, title="Simulation throughput")]
    kernels = result.get("kernels")
    if kernels:
        out.append(
            f"kernel speedup ({kernels['workload']}): "
            f"meek {kernels['meek_speedup']:.2f}x, "
            f"vanilla {kernels['vanilla_speedup']:.2f}x "
            "(fast vs REPRO_SLOW_KERNEL=1)")
    warm = result.get("warm_start")
    if warm:
        out.append(
            f"warm start ({warm['workload']}): cold "
            f"{warm['cold_wall_s']:.2f}s -> warm "
            f"{warm['warm_wall_s']:.2f}s ({warm['warm_speedup']:.2f}x, "
            "full `repro run` subprocess)")
    batch = result.get("batch")
    if batch:
        out.append(
            f"batch mode ({batch['commands']} commands): individual "
            f"{batch['individual_wall_s']:.2f}s -> batch "
            f"{batch['batch_wall_s']:.2f}s "
            f"({batch['batch_speedup']:.2f}x)")
    campaign = result.get("campaign")
    if campaign:
        out.append(
            f"campaign pool ({campaign['campaigns']} campaigns x "
            f"{campaign['points'] // campaign['campaigns']} points, "
            f"jobs={campaign['jobs']}): ephemeral "
            f"{campaign['ephemeral_wall_s']:.2f}s -> persistent "
            f"{campaign['persistent_wall_s']:.2f}s "
            f"({campaign['pool_speedup']:.2f}x, "
            f"{campaign['points_per_s']:.1f} points/s)")
    batch_kernel = result.get("batch_kernel")
    if batch_kernel:
        out.append(
            f"batch kernel ({batch_kernel['workload']}, "
            f"{batch_kernel['lanes']} lanes, "
            f"rate {batch_kernel['rate']}): scalar "
            f"{batch_kernel['scalar_points_per_s']:.2f} -> memo "
            f"{batch_kernel['scalar_memo_points_per_s']:.2f} -> batched "
            f"{batch_kernel['batched_points_per_s']:.2f} points/s "
            f"({batch_kernel['batch_speedup']:.2f}x, "
            f"{batch_kernel['eviction_rate']:.1%} evicted)")
    for name, metrics in result.get("figures", {}).items():
        out.append(f"figure {name}: {metrics['wall_s']:.2f}s wall")
    return "\n".join(out)
