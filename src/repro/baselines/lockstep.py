"""Equivalent-Area LockStep (the Fig. 6 hardware baseline).

Classic dual-core lockstep duplicates the core and compares pins every
cycle: performance equals a single core, area doubles.  To make the
comparison interesting the paper scales the big core's configurable
components down by linear interpolation until *two* copies together
match MEEK's area budget; the lockstep pair then performs like one
scaled-down core (the comparison logic is off the critical path).
"""

from repro.analysis.area import boom_area_mm2, lockstep_scale_factor
from repro.bigcore.core import BigCore
from repro.common.config import default_meek_config


class EaLockstep:
    """The Equivalent-Area LockStep comparator system."""

    def __init__(self, meek_config=None):
        self.meek_config = (meek_config if meek_config is not None
                            else default_meek_config())
        self.scale_factor = lockstep_scale_factor(self.meek_config)
        self.core_config = self.meek_config.big_core.scaled(self.scale_factor)

    @property
    def per_core_area_mm2(self):
        return boom_area_mm2(self.core_config)

    @property
    def pair_area_mm2(self):
        """Both lockstep cores (checker core adds no performance)."""
        return 2.0 * self.per_core_area_mm2

    def run(self, program, max_instructions=None):
        """Execute ``program`` on the lockstep pair.

        Both cores run in cycle-locked step, so timing equals a single
        scaled core; the shadow core only drives the comparators.
        """
        core = BigCore(self.core_config)
        return core.run(program, max_instructions=max_instructions)


def run_ea_lockstep(program, meek_config=None, max_instructions=None):
    """Convenience wrapper; returns ``(run_result, system)``."""
    system = EaLockstep(meek_config)
    return system.run(program, max_instructions=max_instructions), system
