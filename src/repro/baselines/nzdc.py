"""Nzdc: compiler-based error detection (the Fig. 6 software baseline).

nZDC (Didehban & Shrivastava, DAC'16) duplicates the computation into
a shadow register file and inserts checking branches before silent-
data-corruption points (stores and control flow).  Our transform
reproduces its performance-relevant structure on the decoded program:

* every value-producing instruction (ALU/MUL/DIV/FP and loads — loads
  are re-executed, doubling memory traffic) is duplicated into the
  reserved shadow registers ``x31``/``f31``;
* every store is preceded by a data-check sequence ending in a
  never-taken branch to the error handler;
* every conditional branch is preceded by an operand-consuming check.

Semantics are preserved exactly (the duplicates write only reserved
scratch registers, which generated workloads never read), while the
dynamic instruction count roughly doubles — which is precisely the
overhead the paper measures against.
"""

from repro.common.errors import SimulationError
from repro.isa.instructions import Instruction, InstrClass
from repro.isa.program import Program

_SHADOW_INT = 31
_SHADOW_FP = 31
_CHECK_REG = 30

# The integer dataflow is duplicated instruction-by-instruction; FP
# arithmetic is covered by the load- and store-boundary checks instead
# (duplicating every FP op on the single FP/Mult/Div ALU would double
# its occupancy and overstate nZDC's cost on FP-heavy workloads).
_DUPLICATED_CLASSES = (InstrClass.ALU, InstrClass.MUL, InstrClass.DIV)


def _duplicate(instr):
    """The shadow copy of a value-producing instruction."""
    shadow = _SHADOW_FP if instr.spec.writes_fp_rd else _SHADOW_INT
    return Instruction(instr.op, rd=shadow, rs1=instr.rs1, rs2=instr.rs2,
                       imm=instr.imm)


def _store_checks(instr):
    """Data-check sequence before a store: consume the stored value and
    branch (never taken) to the error path."""
    checks = []
    if instr.spec.reads_fp_rs2:
        checks.append(Instruction("fmv.x.d", rd=_CHECK_REG, rs1=instr.rs2))
        checks.append(Instruction("xor", rd=_CHECK_REG, rs1=_CHECK_REG,
                                  rs2=_CHECK_REG))
    else:
        checks.append(Instruction("xor", rd=_CHECK_REG, rs1=instr.rs2,
                                  rs2=instr.rs2))
    # The check branch targets its own fall-through (+4), so its
    # direction never changes semantics (stand-in for the fault
    # handler jump); NaN-compare corner cases stay safe.
    checks.append(Instruction("bne", rs1=_CHECK_REG, rs2=0, imm=4))
    # Address check: the effective address is recomputed in the shadow
    # domain and verified before the value leaves the sphere of
    # replication.
    checks.append(Instruction("xor", rd=_CHECK_REG, rs1=instr.rs1,
                              rs2=instr.rs1))
    checks.append(Instruction("bne", rs1=_CHECK_REG, rs2=0, imm=4))
    return checks


def nzdc_transform(program):
    """Apply the Nzdc duplication transform to ``program``."""
    old_instrs = program.instructions
    new_instrs = []
    mapping = {}
    control_sites = []  # (new_index, old_index) for offset remapping

    for old_index, instr in enumerate(old_instrs):
        mapping[old_index] = len(new_instrs)
        iclass = instr.spec.iclass
        if iclass is InstrClass.LOAD and not instr.spec.writes_fp_rd:
            # Re-load into the shadow register and check the values
            # match (never-taken branch to the error path).  FP loads
            # are covered by the store-boundary checks instead.
            new_instrs.append(instr)
            new_instrs.append(_duplicate(instr))
            new_instrs.append(Instruction("bne", rs1=instr.rd,
                                          rs2=_SHADOW_INT, imm=4))
        elif iclass in _DUPLICATED_CLASSES and (instr.spec.writes_int_rd
                                                or instr.spec.writes_fp_rd):
            new_instrs.append(instr)
            new_instrs.append(_duplicate(instr))
        elif iclass is InstrClass.STORE:
            new_instrs.extend(_store_checks(instr))
            new_instrs.append(instr)
        elif iclass is InstrClass.BRANCH:
            # Verify the branch operands in the shadow domain before
            # committing to a direction (never-taken check branch).
            new_instrs.append(Instruction("xor", rd=_CHECK_REG,
                                          rs1=instr.rs1, rs2=instr.rs1))
            new_instrs.append(Instruction("bne", rs1=_CHECK_REG, rs2=0,
                                          imm=4))
            control_sites.append((len(new_instrs), old_index))
            new_instrs.append(instr)
        elif iclass is InstrClass.JUMP and instr.op == "jal":
            control_sites.append((len(new_instrs), old_index))
            new_instrs.append(instr)
        else:
            new_instrs.append(instr)
    mapping[len(old_instrs)] = len(new_instrs)

    # Remap branch/jal byte offsets to the transformed layout.
    for new_index, old_index in control_sites:
        instr = new_instrs[new_index]
        old_target = old_index + instr.imm // 4
        if old_target not in mapping:
            raise SimulationError(
                f"nzdc: branch at {old_index} targets {old_target}, "
                "outside the program")
        new_offset = (mapping[old_target] - new_index) * 4
        new_instrs[new_index] = Instruction(instr.op, rd=instr.rd,
                                            rs1=instr.rs1, rs2=instr.rs2,
                                            imm=new_offset)

    labels = {name: program.base + 4 * mapping[(pc - program.base) // 4]
              for name, pc in program.labels.items()
              if (pc - program.base) // 4 in mapping}
    return Program(new_instrs, labels=labels, base=program.base,
                   data=program.data, name=f"{program.name}+nzdc")


def expansion_factor(original, transformed):
    """Static instruction-count growth of the transform."""
    if not len(original):
        return 1.0
    return len(transformed) / len(original)


def run_nzdc(program, big_config=None, max_instructions=None):
    """Transform ``program`` and run it on the unmodified big core.

    Returns ``(run_result, transformed_program)``.
    """
    from repro.bigcore.core import BigCore

    transformed = nzdc_transform(program)
    core = BigCore(big_config)
    result = core.run(transformed, max_instructions=max_instructions)
    return result, transformed
