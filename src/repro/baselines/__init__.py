"""Comparison baselines from the paper's evaluation (Fig. 6).

* :mod:`repro.baselines.nzdc` — Nzdc, the software (compiler-based)
  near-zero-silent-data-corruption technique: instruction duplication
  with checking branches before stores and control flow, run on the
  unmodified big core.
* :mod:`repro.baselines.lockstep` — Equivalent-Area LockStep: two
  identical big cores scaled down by linear interpolation until the
  pair matches MEEK's total area budget; the pair performs like a
  single scaled core.
"""

from repro.baselines.lockstep import EaLockstep, run_ea_lockstep
from repro.baselines.nzdc import nzdc_transform, run_nzdc

__all__ = ["EaLockstep", "nzdc_transform", "run_ea_lockstep", "run_nzdc"]
