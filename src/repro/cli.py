"""Command-line interface.

Usage (``python -m repro ...``)::

    python -m repro run swaptions --instructions 20000 --cores 4
    python -m repro inject ferret --trials 3 --cores 6 --jobs 2
    python -m repro figure fig6 --jobs 4
    python -m repro figure tab3
    python -m repro campaign --workloads dedup,ferret --seeds 0,1 \\
        --cores 2,4 --jobs 4 --out results.jsonl
    python -m repro campaign --spec campaign.json --resume --out results.jsonl
    python -m repro difftest --programs 50 --seed 7 --jobs 4 --shrink
    python -m repro difftest --self-check
    python -m repro bench --check
    python -m repro bench --trend
    python -m repro watch results.jsonl
    python -m repro inject ferret --fault-model burst:width=3 \\
        --fault-targets all --out inj.jsonl
    python -m repro coverage inj.jsonl
    python -m repro batch commands.txt
    python -m repro batch commands.txt --jobs 4
    python -m repro events summarize events.jsonl --top 5
    python -m repro campaign --spec c.json --runners 7100 --min-runners 2
    python -m repro runner --connect host:7100 --name rack2
    python -m repro serve --jobs 4 --runners 7100
    python -m repro submit --workloads dedup --seeds 0,1 --priority 5
    python -m repro queue
    python -m repro cancel 3 --pause
    python -m repro list

``run`` executes one workload under MEEK and reports slowdown and
segment statistics; ``inject`` runs a fault campaign; ``figure``
regenerates one of the paper's tables/figures; ``campaign`` executes a
declarative grid (from flags or a JSON spec) through the sharded
campaign engine; ``difftest`` fuzzes every execution model against the
golden ISA semantics (``--self-check`` injects a known fault and proves
the harness detects and shrinks it); ``bench`` measures simulation
throughput per system, writes ``BENCH_perf.json``, and with ``--check``
fails on regressions against the committed baseline; ``batch`` runs a
file (or stdin) of repro commands in **one** warm interpreter — shared
stepper caches and one persistent worker pool across all of them;
``list`` shows the available workloads.  Everything grid-shaped accepts
``--jobs N`` to shard across worker processes with bit-identical
results.

Warm path: compiled steppers are memoized on disk under
``~/.cache/repro`` (``$REPRO_CACHE_DIR`` overrides,
``REPRO_NO_DISK_CACHE=1`` disables), so every invocation after the
first starts warm; the grid-shaped commands (``inject``,
``campaign``, ``difftest``, ``figure``) additionally stream through
the persistent in-process worker pool of :mod:`repro.perf.service`,
while ``run`` — one simulation — relies on the disk cache alone.

Observability: a campaign with ``--out`` publishes an atomically
updated ``<out>.status.json`` snapshot (``--status`` overrides the
location) that ``repro watch`` tails live — incremental
detection-latency percentiles, throughput, per-shard health, ETA;
``watch --once`` prints a single snapshot for scripts and CI.
``--events FILE`` (or ``$REPRO_EVENTS``) turns on the structured
JSONL event log across every process of the run.  ``repro bench``
appends each run to ``benchmarks/BENCH_history.jsonl``; ``repro
bench --trend`` renders the per-metric trajectory.

Serving: ``repro serve`` starts the long-lived campaign master (see
:mod:`repro.serve`) — one warm worker pool shared by every submitter.
``repro submit`` sends a campaign grid over the master's local socket
(``--priority`` orders the queue, ``--detach`` just enqueues),
``repro queue`` lists runs, ``repro cancel RID`` cancels (or
``--pause`` / ``--requeue``) one, and ``repro watch RID`` follows a
run by id — live over the socket while the master is up, falling back
to the run's status snapshot / store on disk once it is not.

Distributed campaigns: ``repro campaign --runners [HOST:]PORT`` (and
``repro serve --runners PORT``) open a TCP runner port; ``repro
runner --connect HOST:PORT`` processes on other machines register,
lease chunks, and stream rows back — any mixture of remote runners
and local shards (``--jobs``) is bit-identical to a serial run.  The
runner port is unauthenticated: bind it only on trusted networks.
``repro events summarize FILE`` renders an event log's per-phase
wall-time breakdown after the fact.
"""

import argparse
import sys

from repro.common.errors import ConfigError

_FIGURES = ("fig6", "fig7", "fig8", "fig9", "fig10", "tab3", "ablations")
_FABRICS = ("f2", "axi", "ideal")


def _csv(cast):
    """argparse type: comma-separated list of ``cast`` values."""
    def parse(text):
        return [cast(part) for part in text.split(",") if part]
    return parse


def _cmd_list(_args):
    from repro.analysis.report import format_table
    from repro.workloads import all_profiles

    rows = [[p.name, p.suite, f"{p.mix.memory_fraction:.2f}",
             f"{p.mix.fp_fraction:.2f}", p.working_set_kb,
             p.body_instructions]
            for p in all_profiles()]
    print(format_table(
        ["workload", "suite", "mem frac", "fp frac", "ws (KB)", "body"],
        rows, title="Available workloads"))
    return 0


def _cmd_run(args):
    from repro.common.config import default_meek_config
    from repro.core.system import MeekSystem, run_vanilla, slowdown
    from repro.workloads import generate_program, get_profile

    program = generate_program(get_profile(args.workload),
                               dynamic_instructions=args.instructions,
                               seed=args.seed)
    vanilla = run_vanilla(program)
    config = default_meek_config(num_little_cores=args.cores,
                                 fabric_kind=args.fabric)
    result = MeekSystem(config).run(program)
    stats = result.controller.stats()
    print(f"workload        : {args.workload}")
    print(f"instructions    : {result.instructions}")
    print(f"vanilla IPC     : {vanilla.ipc:.2f}")
    print(f"slowdown        : {slowdown(result, vanilla):.3f}x "
          f"({args.cores} little cores, {args.fabric})")
    print(f"segments        : {stats['segments']} "
          f"(mean {stats['mean_segment_instrs']:.0f} instrs)")
    print(f"end reasons     : {stats['end_reasons']}")
    print(f"stall cycles    : {stats['stall_cycles']}")
    print(f"all verified    : {result.all_segments_verified}")
    return 0 if result.all_segments_verified else 1


def _progress(spec, args):
    """A stderr progress reporter when interactive (or forced)."""
    from repro.campaign import ProgressReporter
    if getattr(args, "progress", False) or sys.stderr.isatty():
        return ProgressReporter(total=len(spec.points), label=spec.name)
    return None


def _events(args):
    """Install the JSONL event log when ``--events`` was given (before
    any workers fork, so they inherit the sink)."""
    if getattr(args, "events", None):
        from repro.obs.events import install_event_log
        install_event_log(args.events)


def _fault_params(args, prog):
    """Validated ``fault_model``/``fault_targets`` point params from the
    CLI flags — only the flags actually given land in the params, so
    default invocations keep their historical point ids and RNG keys.
    ``None`` after printing the error."""
    from repro.core.faults import parse_fault_model, parse_fault_targets

    params = {}
    try:
        if getattr(args, "fault_model", None):
            params["fault_model"] = parse_fault_model(args.fault_model).spec
        if getattr(args, "fault_targets", None):
            parse_fault_targets(args.fault_targets)
            params["fault_targets"] = args.fault_targets
    except ConfigError as exc:
        print(f"{prog}: {exc}", file=sys.stderr)
        return None
    return params


def _cmd_inject(args):
    from repro.analysis.coverage import CoverageMap, format_coverage
    from repro.campaign import (CampaignPoint, CampaignSpec, ResultStore,
                                default_jobs)
    from repro.obs.live import attach_live
    from repro.perf.service import get_service

    _events(args)
    fault_params = _fault_params(args, "inject")
    if fault_params is None:
        return 2
    points = [
        CampaignPoint(
            task="inject", workload=args.workload,
            instructions=args.instructions, seed=args.seed,
            params={"rate": args.rate, "trial": trial,
                    "cores": args.cores, "fabric": args.fabric,
                    **fault_params,
                    "rng_key": f"cli/{args.workload}/{args.seed}/{trial}"})
        for trial in range(args.trials)
    ]
    spec = CampaignSpec(name=f"inject-{args.workload}", points=points)
    with ResultStore(path=args.out) as store:
        live = attach_live(spec, jobs=default_jobs(args.jobs), store=store)
        result = get_service().run_campaign(spec, jobs=args.jobs,
                                            store=store, live=live,
                                            progress=_progress(spec, args))
    for failure in result.failed:
        print(f"trial failed    : {failure.point_id}: "
              f"{(failure.error or '').splitlines()[0]}")
    injected = sum(r.metrics["injections"] for r in result.ok)
    detected = sum(r.metrics["detected"] for r in result.ok)
    latencies = [lat for r in result.ok for lat in r.metrics["latencies_ns"]]
    print(f"injections      : {injected}")
    if injected:
        print(f"detected        : {detected} ({detected / injected:.0%})")
    else:
        print("detected        : 0 (no injections)")
    if latencies:
        print(f"mean latency    : {sum(latencies) / len(latencies):.0f} ns")
        print(f"worst latency   : {max(latencies):.0f} ns")
    coverage = CoverageMap()
    for r in result.ok:
        coverage.merge_cells((r.metrics or {}).get("coverage"))
    if coverage:
        print(format_coverage(coverage, title="detection coverage"))
    return 0 if result.all_ok else 1


def _cmd_coverage(args):
    import os

    from repro.analysis.coverage import (COVERAGE_SUFFIX,
                                         coverage_from_store,
                                         coverage_path_for, format_coverage,
                                         load_coverage)

    path = args.path
    source = path
    coverage = None
    if os.path.isdir(path):
        candidates = [os.path.join(path, name)
                      for name in os.listdir(path)
                      if name.endswith(COVERAGE_SUFFIX)]
        if not candidates:
            print(f"coverage: no *{COVERAGE_SUFFIX} in {path}",
                  file=sys.stderr)
            return 2
        source = max(candidates, key=os.path.getmtime)
        coverage = load_coverage(source)
    elif path.endswith(".json") and os.path.exists(path):
        coverage = load_coverage(path)
    else:
        sibling = coverage_path_for(path)
        if os.path.exists(sibling):
            source = sibling
            coverage = load_coverage(sibling)
        elif os.path.exists(path):
            # A bare result store with no persisted sibling: replay
            # its rows (same commutative fold, identical output).
            coverage = coverage_from_store(path)
    if coverage is None:
        print(f"coverage: no coverage map at {path}", file=sys.stderr)
        return 2
    print(format_coverage(coverage, title=f"coverage — {source}"))
    # An empty map exits nonzero so CI catches a campaign that
    # silently injected nothing.
    return 0 if coverage else 1


def _resolve_campaign_spec(args, prog="campaign"):
    """Build a :class:`CampaignSpec` from ``--spec`` or the grid flags
    (shared by ``campaign`` and ``submit``); ``None`` after printing
    the error."""
    from repro.campaign import CampaignSpec

    if args.spec is not None:
        try:
            return CampaignSpec.from_file(args.spec)
        except (OSError, ValueError, ConfigError) as exc:
            print(f"{prog}: bad spec {args.spec}: {exc}", file=sys.stderr)
            return None
    if args.workloads:
        for fabric in args.fabric:
            if fabric not in _FABRICS:
                print(f"{prog}: unknown fabric {fabric!r} "
                      f"(choose from {', '.join(_FABRICS)})",
                      file=sys.stderr)
                return None
        configs = [{"cores": cores, "fabric": fabric}
                   for cores in args.cores for fabric in args.fabric]
        injection = None
        if args.task == "inject":
            fault_params = _fault_params(args, prog)
            if fault_params is None:
                return None
            injection = {"rate": args.rate, **fault_params}
        elif getattr(args, "fault_model", None) \
                or getattr(args, "fault_targets", None):
            print(f"{prog}: --fault-model/--fault-targets need "
                  f"--task inject", file=sys.stderr)
            return None
        try:
            return CampaignSpec.grid(
                args.name, workloads=args.workloads,
                seeds=tuple(args.seeds), instructions=args.instructions,
                configs=configs, injection=injection, trials=args.trials,
                task=args.task)
        except ConfigError as exc:
            print(f"{prog}: bad grid: {exc}", file=sys.stderr)
            return None
    print(f"{prog}: provide --spec FILE or --workloads LIST",
          file=sys.stderr)
    return None


def _cmd_campaign(args):
    from repro.campaign import ResultStore, format_summary
    from repro.perf.service import get_service

    _events(args)
    spec = _resolve_campaign_spec(args)
    if spec is None:
        return 2
    resume_from = args.out if args.resume else None
    if args.resume and args.out is None:
        print("campaign: --resume needs --out FILE to resume from",
              file=sys.stderr)
        return 2
    from repro.campaign import default_jobs
    from repro.obs.live import attach_live

    transport = None
    cleanup = []
    if args.runners is not None:
        from repro.campaign.pool import WorkerPool
        from repro.campaign.remote import (RunnerHub, RunnerListener,
                                           parse_address)
        from repro.campaign.transport import TcpRunnerTransport

        kind, host, port = parse_address(str(args.runners))
        if kind != "tcp":
            print("campaign: --runners takes [HOST:]PORT", file=sys.stderr)
            return 2
        hub = RunnerHub()
        try:
            listener = RunnerListener(hub, host=host, port=port).start()
        except OSError as exc:
            print(f"campaign: cannot bind runner port "
                  f"{args.runners}: {exc}", file=sys.stderr)
            return 2
        cleanup.append(listener.stop)
        print(f"campaign: accepting runners on {listener.address} "
              f"('repro runner --connect {listener.address}')",
              file=sys.stderr, flush=True)
        active = hub.wait_for(args.min_runners, timeout_s=args.runner_wait)
        if active < args.min_runners:
            print(f"campaign: only {active} of {args.min_runners} "
                  f"runner(s) registered within {args.runner_wait:.0f}s",
                  file=sys.stderr)
            listener.stop()
            return 2
        # --jobs >= 2 alongside --runners is mixed mode: a local pool
        # steals chunks from the same scheduler as the remote fleet.
        local_jobs = default_jobs(args.jobs)
        local_pool = None
        if local_jobs > 1:
            local_pool = WorkerPool(local_jobs)
            cleanup.append(local_pool.close)
        transport = TcpRunnerTransport(hub, local_pool=local_pool,
                                       lease_timeout_s=args.lease_timeout)

    try:
        with ResultStore(path=args.out) as store:
            live = attach_live(spec, jobs=default_jobs(args.jobs),
                               store=store, status_path=args.status)
            result = get_service().run_campaign(
                spec, jobs=args.jobs, store=store, resume_from=resume_from,
                progress=_progress(spec, args),
                point_timeout_s=args.point_timeout, live=live,
                batch=args.batch, transport=transport)
    finally:
        for fn in reversed(cleanup):
            fn()
    print(format_summary(spec, result.results,
                         corrupt_rows_skipped=result.corrupt_rows_skipped))
    return 0 if result.all_ok else 1


def _difftest_point(args, index, extra=None):
    from repro.campaign import CampaignPoint
    from repro.difftest.harness import DEFAULT_MAX_INSTRUCTIONS

    # One effective cap everywhere: the campaign task treats 0 as "use
    # the default", so the shrink predicates (which pass the raw value)
    # must see the same substitution or they would cap at 0 and never
    # reproduce anything.
    if not args.instructions or args.instructions <= 0:
        args.instructions = DEFAULT_MAX_INSTRUCTIONS
    params = {"index": index}
    if extra:
        params.update(extra)
    return CampaignPoint(task="difftest", workload="fuzz",
                         instructions=args.instructions, seed=args.seed,
                         params=params)


def _difftest_artifact(kind, mismatches, shrunk, small):
    """Regression-artifact payload for one minimized reproducer."""
    return {
        "kind": kind,
        "mismatches": mismatches,
        "original_instructions": shrunk.original_instructions,
        "shrunk_instructions": shrunk.instructions,
        "source": small.lines,
        "data": {f"{addr:#x}": value
                 for addr, value in sorted(small.data_words.items())},
    }


def _difftest_self_check(args):
    """Inject a known fault into forwarded data and prove the harness
    detects the divergence and shrinks it to a tiny reproducer."""
    from repro.campaign import evaluate_point
    from repro.difftest import (diff_program, fuzz_program_for_point,
                                shrink_fuzz_program, write_artifact)
    from repro.perf.service import get_service

    # The shrink predicate re-runs the full 5-way harness per ddmin
    # candidate; warming the service first means every candidate's
    # executors step through already-compiled makers.
    get_service().warm()
    point = _difftest_point(args, 0, {"fault_rate": 1.0,
                                      "fault_targets": "pc"})
    metrics = evaluate_point(point)
    print("self-check      : fault injection armed (rate 1.0, "
          "target srcp.pc)")
    print(f"injections      : {metrics['injections']} "
          f"({metrics['detected']} detected)")
    if not metrics["divergent"]:
        print("self-check      : FAILED — no divergence reported")
        return 1
    print(f"divergence      : {metrics['mismatches'][0]}")

    fuzz = fuzz_program_for_point(point)
    fault_key = f"{point.rng_key()}/fault"

    def predicate(program):
        report = diff_program(program, max_instructions=args.instructions,
                              fault_rate=1.0, fault_key=fault_key,
                              fault_targets="pc")
        return any(m.startswith("meek-replay") for m in report.mismatches)

    shrunk, small = shrink_fuzz_program(fuzz, predicate)
    path = write_artifact(
        args.artifacts, point.point_id,
        _difftest_artifact("self-check", metrics["mismatches"], shrunk,
                           small))
    print(f"shrunk          : {shrunk.original_instructions} -> "
          f"{shrunk.instructions} instructions")
    print(f"artifact        : {path}")

    # Every non-default fault model must also surface as a meek-replay
    # divergence through the same machinery (no shrink — the flow above
    # already proved minimization; this proves model breadth).
    for model_spec in ("burst:width=3", "correlated:span=2",
                       "stuckat:bit=20,value=1"):
        point = _difftest_point(args, 0, {"fault_rate": 1.0,
                                          "fault_targets": "pc",
                                          "fault_model": model_spec})
        metrics = evaluate_point(point)
        verdict = "divergence detected" if metrics["divergent"] else "FAILED"
        print(f"model check     : {model_spec} -> "
              f"{metrics['injections']} injection(s), {verdict}")
        if not metrics["divergent"]:
            return 1
    return 0


def _cmd_difftest(args):
    from repro.campaign import CampaignSpec, ResultStore
    from repro.difftest import (diff_program, fuzz_program_for_point,
                                shrink_fuzz_program, write_artifact)
    from repro.perf.service import get_service

    _events(args)
    if args.self_check:
        return _difftest_self_check(args)
    if args.resume and args.out is None:
        print("difftest: --resume needs --out FILE to resume from",
              file=sys.stderr)
        return 2

    service = get_service()
    if args.shrink:
        # Shrinking runs in-process after the campaign; start warm so
        # the ddmin candidates reuse cached steppers from the first.
        service.warm()
    points = [_difftest_point(args, i) for i in range(args.programs)]
    spec = CampaignSpec(name=f"difftest-seed{args.seed}", points=points)
    from repro.campaign import default_jobs
    from repro.obs.live import attach_live
    with ResultStore(path=args.out) as store:
        result = service.run_campaign(
            spec, jobs=args.jobs, store=store,
            resume_from=args.out if args.resume else None,
            progress=_progress(spec, args),
            live=attach_live(spec, jobs=default_jobs(args.jobs),
                             store=store))

    for failure in result.failed:
        print(f"point failed    : {failure.point_id}: "
              f"{(failure.error or 'error').splitlines()[-1][:70]}")
    divergent = [(point, r)
                 for point, r in zip(spec.points, result.results)
                 if r.ok and r.metrics.get("divergent")]
    for point, r in divergent:
        mismatches = r.metrics.get("mismatches", [])
        first = mismatches[0] if mismatches else "(no detail)"
        print(f"DIVERGENCE      : {point.point_id}: {first}")
        if not args.shrink:
            continue
        fuzz = fuzz_program_for_point(point)

        def predicate(program):
            return diff_program(
                program, max_instructions=args.instructions).divergent

        shrunk, small = shrink_fuzz_program(fuzz, predicate)
        path = write_artifact(
            args.artifacts, point.point_id,
            _difftest_artifact("fuzz-divergence", mismatches, shrunk,
                               small))
        print(f"  shrunk        : {shrunk.original_instructions} -> "
              f"{shrunk.instructions} instructions ({path})")

    total = sum(r.metrics.get("instructions", 0) for r in result.ok)
    print(f"programs        : {len(points)}")
    print(f"instructions    : {total}")
    print(f"divergent       : {len(divergent)}")
    print(f"failed          : {len(result.failed)}")
    return 0 if not divergent and result.all_ok else 1


def _cmd_bench(args):
    from repro.perf.bench import format_bench, run_bench
    from repro.perf.regress import (check_regression, format_check,
                                    load_baseline, write_result)

    if args.trend:
        from repro.perf.history import (format_trend,
                                        format_trend_violations,
                                        load_history, trend_violations)
        records = load_history(args.history)
        print(format_trend(records, last=args.trend_last))
        violations = trend_violations(records,
                                      window=args.trend_window,
                                      tolerance=args.trend_tolerance)
        print(format_trend_violations(violations,
                                      window=args.trend_window,
                                      tolerance=args.trend_tolerance))
        return 1 if violations else 0

    figures = () if args.skip_figures else tuple(args.figures)
    result = run_bench(
        workloads=tuple(args.workloads), instructions=args.instructions,
        seed=args.seed, cores=args.cores, repeat=args.repeat,
        figures=figures, figure_instructions=args.figure_instructions,
        kernels=not args.skip_kernels,
        warm_start=not args.skip_warm_start,
        campaign=not args.skip_campaign, campaign_jobs=args.campaign_jobs,
        batch_kernel=not args.skip_batch_kernel,
        log=lambda msg: print(msg, file=sys.stderr))
    print(format_bench(result))

    status = 0
    if args.check:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"bench: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        base_config = baseline.get("config", {})
        base_workloads = set(baseline.get("workloads", {}))
        if (base_config.get("instructions") != args.instructions
                or not base_workloads.issubset(result["workloads"])):
            print("bench: note: run config differs from the baseline "
                  f"(baseline: {sorted(base_workloads)} at "
                  f"{base_config.get('instructions')} instrs); floors "
                  "assume the baseline config, expect false regressions",
                  file=sys.stderr)
        violations = check_regression(result, baseline,
                                      tolerance=args.tolerance,
                                      kernel_tolerance=args.kernel_tolerance)
        print(format_check(violations, args.baseline))
        if violations:
            status = 1
    if args.out:
        import os.path
        same_file = (args.check
                     and os.path.realpath(args.out)
                     == os.path.realpath(args.baseline))
        if same_file:
            # --check treats the baseline as read-only: writing the
            # fresh numbers over it would ratchet the floor down by
            # the tolerance on every run (and lock in any regression
            # that just failed).  Updating the baseline is an explicit
            # act: run without --check, or point --out elsewhere.
            print(f"bench: --check leaves the baseline {args.out} "
                  "untouched (rerun without --check to update it)",
                  file=sys.stderr)
        else:
            write_result(result, args.out)
            print(f"bench written : {args.out}")
    if args.history:
        from repro.perf.history import append_history
        record = append_history(result, path=args.history)
        if record is not None:
            print(f"bench history : {args.history} "
                  f"(sha {record['git_sha'] or 'unknown'}, "
                  f"{len(record['metrics'])} metrics)")
    return status


def _cmd_watch(args):
    from repro.obs.watch import watch

    return watch(args.path, interval_s=args.interval, once=args.once,
                 max_wait_s=args.wait, socket_path=args.socket,
                 state_dir=args.state_dir)


def _cmd_serve(args):
    """Run (or stop) the campaign master daemon."""
    import os
    import signal

    from repro.serve.client import ServeClient, ServeError, find_socket
    from repro.serve.master import Master

    if args.stop:
        sock = find_socket(args.socket, args.state_dir)
        try:
            with ServeClient(sock, timeout=10.0) as client:
                result = client.shutdown()
        except (OSError, ServeError) as exc:
            print(f"serve: cannot stop master at {sock}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"serve: shutdown requested (master pid {result['pid']})")
        return 0

    _events(args)
    master = Master(state_dir=args.state_dir, socket_path=args.socket,
                    jobs=args.jobs, runners=args.runners,
                    lease_timeout_s=args.lease_timeout)
    try:
        recovered = master.start()
    except (OSError, RuntimeError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    for record in recovered:
        print(f"serve: recovered run {record.rid} ({record.name}) "
              f"-> requeued", file=sys.stderr)
    print(f"serve: master pid {os.getpid()} listening on "
          f"{master.socket_path}")
    if master.listener is not None:
        print(f"serve: accepting runners on {master.listener.address} "
              f"('repro runner --connect {master.listener.address}')")
    print(f"serve: state dir {master.state_dir}", flush=True)

    def _request_stop(signum, frame):
        master.request_shutdown()

    for name in ("SIGTERM", "SIGINT"):
        if hasattr(signal, name):
            signal.signal(getattr(signal, name), _request_stop)
    master.serve_forever()
    print("serve: stopped")
    return 0


def _cmd_submit(args):
    """Submit a campaign to the master and (unless detached) stream
    its rows back, finishing with the same summary ``campaign``
    prints."""
    import os

    from repro.campaign import PointResult, ResultStore, format_summary
    from repro.serve.client import ServeClient, ServeError, find_socket

    spec = _resolve_campaign_spec(args, prog="submit")
    if spec is None:
        return 2
    sock = find_socket(args.socket, args.state_dir)
    out = os.path.abspath(args.out) if args.out else None
    try:
        client = ServeClient(sock)
    except OSError as exc:
        print(f"submit: no master at {sock} ({exc}); start one with "
              f"'repro serve'", file=sys.stderr)
        return 2
    with client:
        try:
            submitted = client.submit(
                spec.to_dict(), priority=args.priority,
                stream=not args.detach, jobs=args.jobs,
                point_timeout_s=args.point_timeout, out=out)
        except ServeError as exc:
            print(f"submit: {exc}", file=sys.stderr)
            return 2
        rid = submitted["rid"]
        print(f"submitted run {rid}: {spec.name} "
              f"({submitted['points']} points, priority "
              f"{submitted['priority']}) -> {submitted['store']}",
              flush=True)
        if args.detach:
            return 0
        progress = _progress(spec, args)
        final = None
        try:
            for event in client.events(rid=rid):
                if event["event"] == "point" and progress is not None:
                    progress(PointResult.from_row(event["row"]))
                elif (event["event"] == "state"
                      and event["state"] != "running"):
                    final = event
        except ServeError as exc:
            print(f"submit: lost the master mid-run ({exc}); the run "
                  f"continues — 'repro watch {rid}' to reattach",
                  file=sys.stderr)
            return 2
    state = final["state"] if final else "unknown"
    stored = (ResultStore.load(submitted["store"])
              if os.path.exists(submitted["store"]) else {})
    results = [stored[p.point_id] for p in spec.points
               if p.point_id in stored]
    print(format_summary(spec, results))
    if state == "done":
        return 1 if (final or {}).get("failed") else 0
    print(f"submit: run {rid} ended {state}", file=sys.stderr)
    return 2


def _cmd_queue(args):
    """Show the master's run queue and pool health."""
    from repro.analysis.report import format_table
    from repro.serve.client import ServeClient, ServeError, find_socket

    sock = find_socket(args.socket, args.state_dir)
    try:
        with ServeClient(sock, timeout=10.0) as client:
            hello = client.hello()
            runs = client.queue()
    except (OSError, ServeError) as exc:
        print(f"queue: no master at {sock} ({exc})", file=sys.stderr)
        return 2
    rows = [[run["rid"], run["state"], run["priority"], run["name"],
             f"{run['completed']}/{run['points_total']}",
             run["failed"] or ""]
            for run in runs]
    print(format_table(
        ["rid", "state", "pri", "name", "points", "failed"], rows,
        title=f"serve queue — master pid {hello['pid']}, "
              f"{len(runs)} run(s)"))
    pool = hello.get("pool")
    if pool:
        print(f"pool      : {pool['jobs']} shard(s), "
              f"{'healthy' if pool['healthy'] else 'DEGRADED'}")
    return 0


def _cmd_cancel(args):
    """Cancel (or pause/requeue) a run on the master."""
    from repro.serve.client import ServeClient, ServeError, find_socket

    method = ("requeue" if args.requeue
              else "pause" if args.pause else "cancel")
    sock = find_socket(args.socket, args.state_dir)
    try:
        with ServeClient(sock, timeout=10.0) as client:
            result = client.request(method, rid=args.rid)
    except (OSError, ServeError) as exc:
        print(f"{method}: {exc}", file=sys.stderr)
        return 2
    if result.get("interrupt"):
        print(f"run {args.rid}: {result['interrupt']} requested "
              f"(currently {result['state']}; stops at the next "
              f"point boundary)")
    else:
        print(f"run {args.rid}: {result['state']}")
    return 0


def _batch_fanout(args, text):
    """``batch --jobs N``: fan independent script lines across shards.

    Each runnable line becomes one campaign point of the ``cli`` task
    (see :mod:`repro.campaign.tasks`) and the whole script runs through
    the ordinary campaign transport layer — the same warm worker pool,
    chunk scheduler, and determinism bookkeeping as any grid.  Captured
    stdout/stderr replay in line order afterwards, so the transcript
    reads as if the script ran serially.  Lines run concurrently and
    must therefore be independent (no line reading another's output
    file mid-script); every line always runs (``--keep-going``
    semantics), because there is no serial "first failure" to stop at.
    """
    import shlex

    from repro.campaign import CampaignPoint, CampaignSpec
    from repro.perf.service import get_service

    commands = []
    failures = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        command = line.strip()
        if not command or command.startswith("#"):
            continue
        try:
            argv = shlex.split(command)
        except ValueError as exc:  # e.g. unbalanced quotes
            print(f"batch: line {lineno}: {exc}", file=sys.stderr)
            failures += 1
            continue
        if argv and argv[0] == "repro":  # tolerate pasted shell lines
            argv = argv[1:]
        if not argv:
            continue
        if argv[0] in ("batch", "serve", "runner"):
            print(f"batch: line {lineno}: {argv[0]} cannot run inside "
                  f"a batch", file=sys.stderr)
            failures += 1
            continue
        commands.append((lineno, " ".join(argv)))
    if commands:
        points = [CampaignPoint(task="cli", workload="batch",
                                params={"command": command, "line": lineno})
                  for lineno, command in commands]
        spec = CampaignSpec(name="batch", points=points)
        result = get_service().run_campaign(spec, jobs=args.jobs,
                                            progress=_progress(spec, args))
        for (lineno, command), point in zip(commands, result.results):
            print(f"batch line {lineno:<4}: {command}", file=sys.stderr)
            if point.ok:
                metrics = point.metrics or {}
                sys.stderr.write(metrics.get("stderr") or "")
                sys.stdout.write(metrics.get("stdout") or "")
                status = metrics.get("status", 0)
            else:
                print(f"batch: line {lineno}: "
                      f"{(point.error or 'error').splitlines()[-1]}",
                      file=sys.stderr)
                status = 1
            if status:
                failures += 1
                print(f"batch: line {lineno} exited {status}",
                      file=sys.stderr)
    print(f"batch           : {len(commands)} command(s), "
          f"{failures} failed")
    return 1 if failures else 0


def _cmd_batch(args):
    """Run a script of repro commands inside one warm interpreter.

    Amortizes interpreter startup, maker compilation, and worker-pool
    forking across every command: the service is warmed once, and all
    grid-shaped commands stream through the same persistent pool.
    With ``--jobs N`` the (independent) lines themselves fan out
    across the pool via the campaign transport layer — see
    :func:`_batch_fanout`.
    """
    import shlex

    from repro.perf.service import get_service

    if args.file == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"batch: cannot read {args.file}: {exc}", file=sys.stderr)
            return 2

    if args.jobs is not None and args.jobs > 1:
        return _batch_fanout(args, text)

    get_service().warm()
    parser = build_parser()
    ran = 0
    failures = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        command = line.strip()
        if not command or command.startswith("#"):
            continue
        try:
            argv = shlex.split(command)
        except ValueError as exc:  # e.g. unbalanced quotes
            print(f"batch: line {lineno}: {exc}", file=sys.stderr)
            failures += 1
            if not args.keep_going:
                break
            continue
        if argv and argv[0] == "repro":  # tolerate pasted shell lines
            argv = argv[1:]
        if not argv:
            continue
        if argv[0] in ("batch", "serve", "runner"):
            reason = {
                "batch": "nested batch is not allowed",
                "serve": "serve blocks forever; start the master "
                         "outside the batch",
                "runner": "runner blocks forever; start it outside "
                          "the batch",
            }[argv[0]]
            print(f"batch: line {lineno}: {reason}", file=sys.stderr)
            failures += 1
            if not args.keep_going:
                break
            continue
        ran += 1
        print(f"batch line {lineno:<4}: {' '.join(argv)}", file=sys.stderr)
        try:
            parsed = parser.parse_args(argv)
            status = _HANDLERS[parsed.command](parsed)
        except SystemExit as exc:  # argparse rejected the line
            status = exc.code if isinstance(exc.code, int) else 2
        except Exception as exc:  # noqa: BLE001 — a failing command
            # must be this line's failure, never the whole batch's.
            print(f"batch: line {lineno}: {type(exc).__name__}: {exc}",
                  file=sys.stderr)
            status = 1
        if status:
            failures += 1
            print(f"batch: line {lineno} exited {status}", file=sys.stderr)
            if not args.keep_going:
                break
    print(f"batch           : {ran} command(s), {failures} failed")
    return 1 if failures else 0


def _cmd_runner(args):
    """Run a remote campaign evaluator against a master's runner port."""
    from repro.campaign.remote import run_runner

    _events(args)

    def status(message):
        print(f"runner: {message}", file=sys.stderr, flush=True)

    try:
        chunks = run_runner(args.connect, name=args.name,
                            poll_s=args.poll,
                            reconnect=not args.no_reconnect,
                            retry_s=args.retry,
                            max_chunks=args.max_chunks,
                            idle_exit_s=args.idle_exit,
                            heartbeat_s=args.heartbeat,
                            on_status=status)
    except KeyboardInterrupt:
        print("runner: interrupted", file=sys.stderr)
        return 0
    except (OSError, ConnectionError) as exc:
        print(f"runner: {exc}", file=sys.stderr)
        return 2
    print(f"runner: done ({chunks} chunk(s) evaluated)", file=sys.stderr)
    return 0


def _cmd_events(args):
    """Analyze a structured JSONL event log (``events summarize``)."""
    from repro.obs.summarize import format_events_summary, summarize_path

    summary = summarize_path(args.path)
    if summary is None:
        print(f"events: no events in {args.path}", file=sys.stderr)
        return 2
    print(format_events_summary(summary, top=args.top, source=args.path))
    return 0


def _cmd_figure(args):
    from repro.experiments import (ablations, fig6_performance, fig7_latency,
                                   fig8_scalability, fig9_backpressure,
                                   fig10_perf_area, tab3_area)
    module = {
        "fig6": fig6_performance,
        "fig7": fig7_latency,
        "fig8": fig8_scalability,
        "fig9": fig9_backpressure,
        "fig10": fig10_perf_area,
        "tab3": tab3_area,
        "ablations": ablations,
    }[args.name]
    if args.name == "tab3":
        print(module.format_results(module.run(jobs=args.jobs)))
    else:
        print(module.format_results(
            module.run(dynamic_instructions=args.instructions,
                       jobs=args.jobs)))
    return 0


def _add_grid_args(parser):
    """The campaign-grid flags shared by ``campaign`` and ``submit``
    (everything :func:`_resolve_campaign_spec` consumes, plus the
    execution knobs both commands forward)."""
    parser.add_argument("--spec", default=None,
                        help="JSON spec file (points or grid shorthand); "
                             "overrides grid flags")
    parser.add_argument("--name", default="cli")
    parser.add_argument("--task", choices=("meek", "inject"),
                        default="meek")
    parser.add_argument("--workloads", type=_csv(str), default=[])
    parser.add_argument("--seeds", type=_csv(int), default=[0])
    parser.add_argument("--instructions", type=int, default=20_000)
    parser.add_argument("--cores", type=_csv(int), default=[4])
    parser.add_argument("--fabric", type=_csv(str), default=["f2"])
    parser.add_argument("--trials", type=int, default=3,
                        help="fault-injection trials per cell")
    parser.add_argument("--rate", type=float, default=0.008)
    parser.add_argument("--fault-model", default=None,
                        help="fault model for --task inject: single, "
                             "burst:width=K, correlated:span=N, "
                             "stuckat[:bit=B,value=V]")
    parser.add_argument("--fault-targets", default=None,
                        help="injection targets for --task inject: "
                             "groups (runtime, status, dcbuf, fabric, "
                             "all) or exact structures "
                             "(e.g. runtime.addr,fabric.status)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker shards (default $REPRO_JOBS or 1)")
    parser.add_argument("--point-timeout", type=float, default=None,
                        help="per-point wall-clock budget (s)")
    parser.add_argument("--progress", action="store_true",
                        help="force the stderr progress line")


def _add_serve_client_args(parser, what="talking to the master"):
    """The master-discovery flags every serve thin client takes."""
    parser.add_argument("--socket", default=None,
                        help=f"master socket for {what} (default: "
                             "$REPRO_SERVE_SOCKET, the state dir's "
                             "contact file, or its serve.sock)")
    parser.add_argument("--state-dir", default=None,
                        help="serve state directory (default "
                             "$REPRO_SERVE_DIR or ~/.cache/repro/serve)")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MEEK (DAC'25) reproduction: heterogeneous parallel "
                    "error detection, cycle-level model")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads")

    run_parser = sub.add_parser("run", help="run one workload under MEEK")
    run_parser.add_argument("workload")
    run_parser.add_argument("--instructions", type=int, default=20_000)
    run_parser.add_argument("--cores", type=int, default=4)
    run_parser.add_argument("--fabric", choices=("f2", "axi", "ideal"),
                            default="f2")
    run_parser.add_argument("--seed", type=int, default=0)

    inject_parser = sub.add_parser("inject", help="fault campaign")
    inject_parser.add_argument("workload")
    inject_parser.add_argument("--instructions", type=int, default=15_000)
    inject_parser.add_argument("--trials", type=int, default=2)
    inject_parser.add_argument("--rate", type=float, default=0.008)
    inject_parser.add_argument("--seed", type=int, default=0)
    inject_parser.add_argument("--cores", type=int, default=4)
    inject_parser.add_argument("--fabric", choices=_FABRICS, default="f2")
    inject_parser.add_argument("--fault-model", default=None,
                               help="fault model: single (default), "
                                    "burst:width=K, correlated:span=N, "
                                    "stuckat[:bit=B,value=V]")
    inject_parser.add_argument("--fault-targets", default=None,
                               help="injection targets: groups (runtime, "
                                    "status, dcbuf, fabric, all) or exact "
                                    "structures (runtime.addr, "
                                    "fabric.status, ...)")
    inject_parser.add_argument("--out", default=None,
                               help="append per-trial JSONL rows here "
                                    "(also persists <out>.coverage.json)")
    inject_parser.add_argument("--jobs", type=int, default=None,
                               help="worker shards (default $REPRO_JOBS or 1)")
    inject_parser.add_argument("--progress", action="store_true",
                               help="force the stderr progress line")
    inject_parser.add_argument("--events", default=None,
                               help="append structured JSONL events here "
                                    "(sets $REPRO_EVENTS for all workers)")

    figure_parser = sub.add_parser("figure",
                                   help="regenerate a paper table/figure")
    figure_parser.add_argument("name", choices=_FIGURES)
    figure_parser.add_argument("--instructions", type=int, default=10_000)
    figure_parser.add_argument("--jobs", type=int, default=None,
                               help="worker shards (default $REPRO_JOBS or 1)")

    campaign_parser = sub.add_parser(
        "campaign",
        help="run a declarative grid through the sharded campaign engine")
    _add_grid_args(campaign_parser)
    campaign_parser.add_argument("--out", default=None,
                                 help="append per-point JSONL rows here")
    campaign_parser.add_argument("--resume", action="store_true",
                                 help="skip points already OK in --out")
    campaign_parser.add_argument("--status", default=None,
                                 help="publish the live status snapshot "
                                      "here (default: <out>.status.json "
                                      "when --out is given)")
    campaign_parser.add_argument("--events", default=None,
                                 help="append structured JSONL events here "
                                      "(sets $REPRO_EVENTS for all workers)")
    campaign_parser.add_argument("--batch", default=None,
                                 help="lockstep batch width for compatible "
                                      "inject points: N, 'auto' (the "
                                      "default: kernel-chosen width), or 1 "
                                      "to force scalar evaluation; rows "
                                      "are bit-identical either way")
    campaign_parser.add_argument("--runners", default=None,
                                 metavar="[HOST:]PORT",
                                 help="accept remote 'repro runner' "
                                      "processes on this TCP port and "
                                      "distribute chunks to them (0 picks "
                                      "a free port; trusted networks "
                                      "only — no authentication); with "
                                      "--jobs >= 2 a local pool works "
                                      "the same queue")
    campaign_parser.add_argument("--min-runners", type=int, default=1,
                                 help="runners to wait for before starting "
                                      "(with --runners)")
    campaign_parser.add_argument("--runner-wait", type=float, default=60.0,
                                 help="seconds to wait for --min-runners "
                                      "before giving up")
    campaign_parser.add_argument("--lease-timeout", type=float,
                                 default=60.0,
                                 help="seconds without a row or heartbeat "
                                      "before a runner's lease expires and "
                                      "its chunk requeues (scaled up "
                                      "automatically by the per-unit "
                                      "evaluation budget)")

    bench_parser = sub.add_parser(
        "bench",
        help="benchmark the simulation kernel and check for regressions")
    bench_parser.add_argument("--workloads", type=_csv(str),
                              default=["swaptions", "mcf", "streamcluster"])
    bench_parser.add_argument("--instructions", type=int, default=20_000)
    bench_parser.add_argument("--seed", type=int, default=0)
    bench_parser.add_argument("--cores", type=int, default=4)
    bench_parser.add_argument("--repeat", type=int, default=3,
                              help="samples per measurement (best is kept)")
    bench_parser.add_argument("--figures", type=_csv(str), default=["fig7"],
                              help="figure drivers to time")
    bench_parser.add_argument("--figure-instructions", type=int,
                              default=2_000)
    bench_parser.add_argument("--skip-figures", action="store_true")
    bench_parser.add_argument("--skip-kernels", action="store_true",
                              help="skip the fast-vs-slow kernel A/B")
    bench_parser.add_argument("--skip-warm-start", action="store_true",
                              help="skip the cold/warm CLI and batch "
                                   "subprocess measurements")
    bench_parser.add_argument("--skip-campaign", action="store_true",
                              help="skip the ephemeral-vs-persistent "
                                   "worker-pool measurement")
    bench_parser.add_argument("--campaign-jobs", type=int, default=2,
                              help="shards for the campaign-pool bench")
    bench_parser.add_argument("--skip-batch-kernel", action="store_true",
                              help="skip the lockstep-batch vs scalar "
                                   "campaign measurement")
    bench_parser.add_argument("--out", default="BENCH_perf.json",
                              help="write the result JSON here ('' skips)")
    bench_parser.add_argument("--baseline", default="BENCH_perf.json",
                              help="committed baseline for --check")
    bench_parser.add_argument("--check", action="store_true",
                              help="fail (exit 1) on regression vs the "
                                   "baseline")
    bench_parser.add_argument("--tolerance", type=float, default=0.5,
                              help="allowed fractional throughput drop")
    bench_parser.add_argument("--kernel-tolerance", type=float, default=0.5,
                              help="allowed fractional kernel-speedup drop")
    bench_parser.add_argument("--history",
                              default="benchmarks/BENCH_history.jsonl",
                              help="append each run (with git SHA) to this "
                                   "JSONL trend history ('' skips)")
    bench_parser.add_argument("--trend", action="store_true",
                              help="render the recorded per-metric "
                                   "trajectory and exit (no benchmark "
                                   "run); exits 1 when a metric's "
                                   "fitted slope regressed")
    bench_parser.add_argument("--trend-last", type=int, default=20,
                              help="history entries shown per metric "
                                   "with --trend")
    bench_parser.add_argument("--trend-window", type=int, default=6,
                              help="trailing runs the --trend slope "
                                   "check fits a line over")
    bench_parser.add_argument("--trend-tolerance", type=float,
                              default=0.15,
                              help="allowed fitted fractional decline "
                                   "over the --trend window before the "
                                   "slope check fails (exit 1)")

    difftest_parser = sub.add_parser(
        "difftest",
        help="differential fuzzing of every core model against the "
             "golden ISA semantics")
    difftest_parser.add_argument("--programs", type=int, default=50,
                                 help="number of fuzz programs")
    difftest_parser.add_argument("--seed", type=int, default=0)
    difftest_parser.add_argument("--jobs", type=int, default=None,
                                 help="worker shards (default $REPRO_JOBS "
                                      "or 1)")
    difftest_parser.add_argument("--shrink", action="store_true",
                                 help="minimize divergent programs and "
                                      "write regression artifacts")
    difftest_parser.add_argument("--self-check", action="store_true",
                                 help="inject a known fault and prove the "
                                      "harness detects and shrinks it")
    difftest_parser.add_argument("--instructions", type=int, default=10_000,
                                 help="per-executor committed-instruction "
                                      "cap")
    difftest_parser.add_argument("--artifacts",
                                 default="artifacts/difftest",
                                 help="regression-artifact directory")
    difftest_parser.add_argument("--out", default=None,
                                 help="append per-point JSONL rows here")
    difftest_parser.add_argument("--resume", action="store_true",
                                 help="skip points already OK in --out")
    difftest_parser.add_argument("--progress", action="store_true",
                                 help="force the stderr progress line")
    difftest_parser.add_argument("--events", default=None,
                                 help="append structured JSONL events here "
                                      "(sets $REPRO_EVENTS for all "
                                      "workers)")

    watch_parser = sub.add_parser(
        "watch",
        help="tail a running campaign's live status (or summarize a "
             "finished result store)")
    watch_parser.add_argument("path",
                              help="status snapshot (*.status.json), "
                                   "result store (results.jsonl), a "
                                   "directory containing snapshots, or a "
                                   "serve run id (digits)")
    watch_parser.add_argument("--interval", type=float, default=1.0,
                              help="refresh interval in seconds")
    watch_parser.add_argument("--once", action="store_true",
                              help="print a single snapshot and exit "
                                   "(scripting/CI mode)")
    watch_parser.add_argument("--wait", type=float, default=10.0,
                              help="seconds to wait for the snapshot to "
                                   "appear before giving up")
    _add_serve_client_args(watch_parser, "watching a run id")

    coverage_parser = sub.add_parser(
        "coverage",
        help="render a campaign's per-structure detection-coverage map")
    coverage_parser.add_argument(
        "path",
        help="coverage map (*.coverage.json), result store "
             "(its persisted sibling map, else replayed from rows), "
             "or a directory containing maps")

    batch_parser = sub.add_parser(
        "batch",
        help="run a file of repro commands in one warm process "
             "(shared stepper cache + persistent worker pool)")
    batch_parser.add_argument("file",
                              help="command file, one repro invocation "
                                   "per line ('-' reads stdin; '#' "
                                   "comments)")
    batch_parser.add_argument("--keep-going", action="store_true",
                              help="continue past failing commands")
    batch_parser.add_argument("--jobs", type=int, default=None,
                              help="fan the (independent) script lines "
                                   "across N worker shards through the "
                                   "campaign transport layer; output "
                                   "replays in line order, every line "
                                   "runs (--keep-going semantics)")

    runner_parser = sub.add_parser(
        "runner",
        help="remote campaign evaluator: connect to a master's runner "
             "port, lease chunks, stream result rows back")
    runner_parser.add_argument("--connect", required=True,
                               metavar="HOST:PORT",
                               help="master runner address (HOST:PORT, a "
                                    "bare port on localhost, or a Unix "
                                    "socket path)")
    runner_parser.add_argument("--name", default=None,
                               help="worker name reported in result rows "
                                    "and runner status (default "
                                    "runner-<id>)")
    runner_parser.add_argument("--poll", type=float, default=0.5,
                               help="idle seconds between empty leases")
    runner_parser.add_argument("--retry", type=float, default=30.0,
                               help="seconds of continuous connection "
                                    "failure before giving up")
    runner_parser.add_argument("--no-reconnect", action="store_true",
                               help="exit on the first lost connection "
                                    "instead of retrying")
    runner_parser.add_argument("--max-chunks", type=int, default=None,
                               help="exit after evaluating this many "
                                    "chunks (tests/drills)")
    runner_parser.add_argument("--idle-exit", type=float, default=None,
                               help="exit after this many seconds without "
                                    "a lease grant")
    runner_parser.add_argument("--heartbeat", type=float, default=10.0,
                               help="seconds between lease-renewal "
                                    "heartbeats while a chunk evaluates "
                                    "(0 disables)")
    runner_parser.add_argument("--events", default=None,
                               help="append structured JSONL events here "
                                    "(sets $REPRO_EVENTS)")

    events_parser = sub.add_parser(
        "events", help="analyze a structured JSONL event log")
    events_sub = events_parser.add_subparsers(dest="action", required=True)
    summarize_parser = events_sub.add_parser(
        "summarize",
        help="per-phase wall-time breakdown with campaign/shard/chunk "
             "rollups and the slowest points")
    summarize_parser.add_argument("path", help="event-log file (JSONL)")
    summarize_parser.add_argument("--top", type=int, default=10,
                                  help="slowest points to list")

    serve_parser = sub.add_parser(
        "serve",
        help="run the campaign master daemon (one warm worker pool "
             "shared by every submitter)")
    serve_parser.add_argument("--jobs", type=int, default=None,
                              help="default worker shards for submitted "
                                   "runs (default $REPRO_JOBS or 1)")
    serve_parser.add_argument("--stop", action="store_true",
                              help="ask a running master to shut down "
                                   "gracefully and exit")
    serve_parser.add_argument("--events", default=None,
                              help="append structured JSONL events here "
                                   "(sets $REPRO_EVENTS for all workers)")
    serve_parser.add_argument("--runners", default=None,
                              metavar="[HOST:]PORT",
                              help="also accept remote 'repro runner' "
                                   "processes on this TCP port; submitted "
                                   "runs distribute across them (0 picks "
                                   "a free port; trusted networks only)")
    serve_parser.add_argument("--lease-timeout", type=float, default=60.0,
                              help="seconds without a row or heartbeat "
                                   "before a runner's lease expires and "
                                   "its chunk requeues (scaled up "
                                   "automatically by the per-unit "
                                   "evaluation budget)")
    _add_serve_client_args(serve_parser, "this master")

    submit_parser = sub.add_parser(
        "submit",
        help="submit a campaign grid to the serve master and stream "
             "its rows back")
    _add_grid_args(submit_parser)
    submit_parser.add_argument("--priority", type=int, default=0,
                               help="queue priority (higher runs first; "
                                    "ties in submission order)")
    submit_parser.add_argument("--out", default=None,
                               help="result store path (default: the "
                                    "master's runs/<rid>.results.jsonl)")
    submit_parser.add_argument("--detach", action="store_true",
                               help="just enqueue and print the rid; "
                                    "don't stream results")
    _add_serve_client_args(submit_parser)

    queue_parser = sub.add_parser(
        "queue", help="show the serve master's run queue")
    _add_serve_client_args(queue_parser)

    cancel_parser = sub.add_parser(
        "cancel",
        help="cancel a serve run (or --pause / --requeue it)")
    cancel_parser.add_argument("rid", type=int, help="run id")
    group = cancel_parser.add_mutually_exclusive_group()
    group.add_argument("--pause", action="store_true",
                       help="stop after the current point but keep the "
                            "run resumable")
    group.add_argument("--requeue", action="store_true",
                       help="put a paused/cancelled/failed run back on "
                            "the queue (resumes from its store)")
    _add_serve_client_args(cancel_parser)
    return parser


_HANDLERS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "inject": _cmd_inject,
    "figure": _cmd_figure,
    "campaign": _cmd_campaign,
    "difftest": _cmd_difftest,
    "bench": _cmd_bench,
    "batch": _cmd_batch,
    "watch": _cmd_watch,
    "coverage": _cmd_coverage,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "queue": _cmd_queue,
    "cancel": _cmd_cancel,
    "runner": _cmd_runner,
    "events": _cmd_events,
}


def cli_handlers():
    """The command-name → handler mapping (used by the ``cli``
    campaign task to re-enter the CLI inside a worker shard)."""
    return _HANDLERS


def main(argv=None):
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
