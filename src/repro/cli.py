"""Command-line interface.

Usage (``python -m repro ...``)::

    python -m repro run swaptions --instructions 20000 --cores 4
    python -m repro inject ferret --trials 3
    python -m repro figure fig6
    python -m repro figure tab3
    python -m repro list

``run`` executes one workload under MEEK and reports slowdown and
segment statistics; ``inject`` runs a fault campaign; ``figure``
regenerates one of the paper's tables/figures; ``list`` shows the
available workloads.
"""

import argparse
import sys

from repro.analysis.report import format_table
from repro.common.config import default_meek_config
from repro.common.prng import DeterministicRng
from repro.core.faults import FaultInjector
from repro.core.system import MeekSystem, run_vanilla, slowdown
from repro.workloads import all_profiles, generate_program, get_profile

_FIGURES = ("fig6", "fig7", "fig8", "fig9", "fig10", "tab3", "ablations")


def _cmd_list(_args):
    rows = [[p.name, p.suite, f"{p.mix.memory_fraction:.2f}",
             f"{p.mix.fp_fraction:.2f}", p.working_set_kb,
             p.body_instructions]
            for p in all_profiles()]
    print(format_table(
        ["workload", "suite", "mem frac", "fp frac", "ws (KB)", "body"],
        rows, title="Available workloads"))
    return 0


def _cmd_run(args):
    program = generate_program(get_profile(args.workload),
                               dynamic_instructions=args.instructions,
                               seed=args.seed)
    vanilla = run_vanilla(program)
    config = default_meek_config(num_little_cores=args.cores,
                                 fabric_kind=args.fabric)
    result = MeekSystem(config).run(program)
    stats = result.controller.stats()
    print(f"workload        : {args.workload}")
    print(f"instructions    : {result.instructions}")
    print(f"vanilla IPC     : {vanilla.ipc:.2f}")
    print(f"slowdown        : {slowdown(result, vanilla):.3f}x "
          f"({args.cores} little cores, {args.fabric})")
    print(f"segments        : {stats['segments']} "
          f"(mean {stats['mean_segment_instrs']:.0f} instrs)")
    print(f"end reasons     : {stats['end_reasons']}")
    print(f"stall cycles    : {stats['stall_cycles']}")
    print(f"all verified    : {result.all_segments_verified}")
    return 0 if result.all_segments_verified else 1


def _cmd_inject(args):
    program = generate_program(get_profile(args.workload),
                               dynamic_instructions=args.instructions,
                               seed=args.seed)
    latencies = []
    injected = detected = 0
    for trial in range(args.trials):
        rng = DeterministicRng(f"cli/{args.workload}/{args.seed}/{trial}")
        injector = FaultInjector(rng, rate=args.rate)
        system = MeekSystem(default_meek_config(), injector=injector)
        result = system.run(program)
        injected += len(injector.injections)
        detected += injector.detected_count
        latencies.extend(result.detection_latencies_ns())
    print(f"injections      : {injected}")
    print(f"detected        : {detected} "
          f"({detected / injected:.0%})" if injected else "no injections")
    if latencies:
        print(f"mean latency    : {sum(latencies) / len(latencies):.0f} ns")
        print(f"worst latency   : {max(latencies):.0f} ns")
    return 0


def _cmd_figure(args):
    from repro.experiments import (ablations, fig6_performance, fig7_latency,
                                   fig8_scalability, fig9_backpressure,
                                   fig10_perf_area, tab3_area)
    module = {
        "fig6": fig6_performance,
        "fig7": fig7_latency,
        "fig8": fig8_scalability,
        "fig9": fig9_backpressure,
        "fig10": fig10_perf_area,
        "tab3": tab3_area,
        "ablations": ablations,
    }[args.name]
    if args.name == "tab3":
        print(module.format_results(module.run()))
    else:
        print(module.format_results(
            module.run(dynamic_instructions=args.instructions)))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MEEK (DAC'25) reproduction: heterogeneous parallel "
                    "error detection, cycle-level model")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads")

    run_parser = sub.add_parser("run", help="run one workload under MEEK")
    run_parser.add_argument("workload")
    run_parser.add_argument("--instructions", type=int, default=20_000)
    run_parser.add_argument("--cores", type=int, default=4)
    run_parser.add_argument("--fabric", choices=("f2", "axi", "ideal"),
                            default="f2")
    run_parser.add_argument("--seed", type=int, default=0)

    inject_parser = sub.add_parser("inject", help="fault campaign")
    inject_parser.add_argument("workload")
    inject_parser.add_argument("--instructions", type=int, default=15_000)
    inject_parser.add_argument("--trials", type=int, default=2)
    inject_parser.add_argument("--rate", type=float, default=0.008)
    inject_parser.add_argument("--seed", type=int, default=0)

    figure_parser = sub.add_parser("figure",
                                   help="regenerate a paper table/figure")
    figure_parser.add_argument("name", choices=_FIGURES)
    figure_parser.add_argument("--instructions", type=int, default=10_000)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "run": _cmd_run,
        "inject": _cmd_inject,
        "figure": _cmd_figure,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
