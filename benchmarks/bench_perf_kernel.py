"""Fast-kernel throughput: the numbers ``repro bench`` locks in.

Runs the swaptions profile through every execution system on the fast
kernel, then A/Bs the MEEK system against the naive loop
(``REPRO_SLOW_KERNEL=1``) and asserts both the bit-identical contract
and that the decoded kernel is actually faster — the speedup this PR
exists to protect.
"""

import os
import time

from repro.analysis.report import format_table
from repro.common.config import default_meek_config
from repro.core.system import MeekSystem, run_vanilla
from repro.difftest.golden import run_golden
from repro.workloads import generate_program, get_profile

DYNAMIC_INSTRUCTIONS = 20_000


def _program():
    return generate_program(get_profile("swaptions"),
                            dynamic_instructions=DYNAMIC_INSTRUCTIONS,
                            seed=0)


def _best(fn, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_kernel_throughput(once):
    program = _program()

    def suite():
        rows = []
        golden_s, _ = _best(lambda: run_golden(program))
        rows.append(["golden", DYNAMIC_INSTRUCTIONS / golden_s])
        vanilla_s, _ = _best(lambda: run_vanilla(program))
        rows.append(["vanilla", DYNAMIC_INSTRUCTIONS / vanilla_s])
        config = default_meek_config(num_little_cores=4)
        meek_s, meek = _best(lambda: MeekSystem(config).run(program))
        rows.append(["meek", DYNAMIC_INSTRUCTIONS / meek_s])
        return rows, meek_s, meek

    rows, fast_meek_s, fast = once(suite)

    os.environ["REPRO_SLOW_KERNEL"] = "1"
    try:
        config = default_meek_config(num_little_cores=4)
        slow_meek_s, slow = _best(lambda: MeekSystem(config).run(program))
    finally:
        os.environ.pop("REPRO_SLOW_KERNEL", None)

    assert fast.cycles == slow.cycles, "kernels diverged on cycle count"
    assert fast.instructions == slow.instructions
    assert fast_meek_s < slow_meek_s, \
        "the fast kernel must beat the naive loop"

    print(format_table(
        ["system", "instrs/sec"],
        [[name, f"{rate:,.0f}"] for name, rate in rows],
        title="Fast-kernel throughput (swaptions, 20k instrs)"))
    print(f"meek kernel speedup: {slow_meek_s / fast_meek_s:.2f}x "
          "(fast vs REPRO_SLOW_KERNEL=1)")
