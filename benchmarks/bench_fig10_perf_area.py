"""Fig. 10: little-core performance/area, optimized vs default Rocket.

Paper: widening the bottlenecked components (8-unroll divider, 3-stage
pipelined FPU) improves the little core's performance/area by 15.2%
geomean on PARSEC, with the biggest wins on division-heavy workloads.
"""

from repro.experiments import fig10_perf_area

DYNAMIC_INSTRUCTIONS = 12_000


def test_fig10_perf_area(once):
    rows = once(fig10_perf_area.run,
                dynamic_instructions=DYNAMIC_INSTRUCTIONS)
    print()
    print(fig10_perf_area.format_results(rows))

    improvement = fig10_perf_area.geomean_improvement(rows)
    # Geomean improvement in the paper's 15.2% ballpark.
    assert 0.05 < improvement < 0.40
    by_name = {r.name: r for r in rows}
    # The divider-bound workload benefits the most.
    assert by_name["swaptions"].improvement == max(r.improvement
                                                   for r in rows)
    # The optimized core is never slower in raw IPC.
    for row in rows:
        assert row.optimized_ipc >= row.default_ipc * 0.999
