"""Fig. 9: backpressure decomposition — AXI-Interconnect vs F2 (PARSEC,
4 little cores).

Paper: the full-featured AXI interconnect adds 16.7% geomean overhead
(the 128-bit one-packet-per-cycle bus is the system bottleneck); F2
cuts data collection + forwarding below 5%, leaving MEEK
computation-bound.
"""

from repro.experiments import fig9_backpressure

DYNAMIC_INSTRUCTIONS = 12_000


def test_fig9_backpressure(once):
    rows = once(fig9_backpressure.run,
                dynamic_instructions=DYNAMIC_INSTRUCTIONS)
    print()
    print(fig9_backpressure.format_results(rows))

    means = fig9_backpressure.geomeans(rows)
    # The AXI baseline is markedly worse than F2.
    assert means["axi"] > means["f2"] + 0.05
    # With F2, collection+forwarding overhead stays below 5%.
    f2_forwarding = fig9_backpressure.forwarding_overhead(rows, "f2")
    assert f2_forwarding < 0.05
    # With AXI, it is the dominant overhead (double-digit percent).
    axi_forwarding = fig9_backpressure.forwarding_overhead(rows, "axi")
    assert axi_forwarding > 0.08
    # F2 shifts the system to computation-bound: forwarding stalls are
    # small relative to little-core stalls wherever any stalls exist.
    for row in rows:
        if row.fabric == "f2":
            assert row.forwarding_fraction < 0.02
