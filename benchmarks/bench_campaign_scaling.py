"""Campaign engine scaling: serial vs sharded wall-clock on a fixed grid.

Records the wall-clock of the same campaign spec executed with
``jobs=1`` and ``jobs=min(4, cpu_count)`` so the parallel win (or the
single-core neutrality) is tracked in the bench trajectory, and
asserts the two executions produce identical metrics — the engine's
core determinism contract.
"""

import multiprocessing
import time

from repro.analysis.report import format_table
from repro.campaign import CampaignSpec, run_campaign

DYNAMIC_INSTRUCTIONS = 8_000
WORKLOADS = ("blackscholes", "dedup", "ferret", "swaptions")
SEEDS = (0, 1)


def _spec():
    return CampaignSpec.grid(
        "bench-scaling", workloads=WORKLOADS, seeds=SEEDS,
        instructions=DYNAMIC_INSTRUCTIONS,
        configs=[{"cores": 2}, {"cores": 4}])


def _timed(jobs):
    start = time.perf_counter()
    result = run_campaign(_spec(), jobs=jobs)
    return result, time.perf_counter() - start


def test_campaign_scaling(once):
    parallel_jobs = min(4, multiprocessing.cpu_count())
    serial, serial_s = _timed(jobs=1)
    parallel, parallel_s = once(_timed, jobs=parallel_jobs)

    assert serial.all_ok and parallel.all_ok
    assert serial.metrics() == parallel.metrics(), \
        "sharded campaign diverged from serial"

    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    print()
    print(format_table(
        ["jobs", "points", "wall-clock (s)", "speedup"],
        [[1, len(serial.results), f"{serial_s:.2f}", "1.00x"],
         [parallel_jobs, len(parallel.results), f"{parallel_s:.2f}",
          f"{speedup:.2f}x"]],
        title=f"Campaign scaling — {len(serial.results)} points, "
              f"{multiprocessing.cpu_count()} CPU(s)"))
    # Sharding must never be catastrophically slower than serial, even
    # on a single-core host (process setup is the only overhead).
    assert parallel_s < serial_s * 3.0
