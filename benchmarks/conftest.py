"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper.  The
underlying simulations are deterministic, so a single round is both
sufficient and desirable (pytest-benchmark measures the harness run
time; the scientific output is printed and shape-checked).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)
    return runner
