"""Ablations over MEEK's design parameters (DESIGN.md per-experiment
index; context for the paper's Sec. V-D analysis).

Checks that each design choice behaves as the paper's reasoning
predicts: shrinking the LSL multiplies checkpoints and collecting
stalls; the 5000-instruction timeout caps segment length for
compute-heavy code; shallow DC-Buffers convert RCP bursts into commit
stalls even behind F2.
"""

from repro.experiments import ablations

DYNAMIC_INSTRUCTIONS = 10_000


def test_ablation_lsl_size(once):
    rows = once(ablations.sweep_lsl_size,
                dynamic_instructions=DYNAMIC_INSTRUCTIONS)
    print()
    print(ablations.format_results(rows))
    by_size = {r.value: r for r in rows}
    # Smaller logs close segments earlier...
    assert by_size[1].segments > by_size[4].segments
    # ...which multiplies DEU collecting stalls.
    assert by_size[1].collecting_stalls > by_size[4].collecting_stalls
    # Past the evaluated 4 KB point, extra capacity buys little.
    gain_to_4 = by_size[1].slowdown - by_size[4].slowdown
    gain_past_4 = by_size[4].slowdown - by_size[8].slowdown
    assert gain_past_4 <= max(gain_to_4, 0.002)


def test_ablation_timeout(once):
    rows = once(ablations.sweep_timeout,
                dynamic_instructions=DYNAMIC_INSTRUCTIONS)
    print()
    print(ablations.format_results(rows))
    by_timeout = {r.value: r for r in rows}
    # Shorter timeouts mean more, shorter segments.
    assert by_timeout[500].segments > by_timeout[5000].segments
    # The paper's 5000-instruction choice costs essentially nothing
    # vs an unbounded checkpoint.
    assert abs(by_timeout[5000].slowdown
               - by_timeout[20000].slowdown) < 0.03


def test_ablation_dc_buffer_depth(once):
    rows = once(ablations.sweep_buffer_depth,
                dynamic_instructions=DYNAMIC_INSTRUCTIONS)
    print()
    print(ablations.format_results(rows))
    by_depth = {r.value: r for r in rows}
    # Shallow buffers stall the commit stage on RCP bursts.
    assert by_depth[2].forwarding_stalls > by_depth[64].forwarding_stalls
    # Depth never makes things slower.
    assert by_depth[64].slowdown <= by_depth[2].slowdown + 1e-6
