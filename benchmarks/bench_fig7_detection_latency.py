"""Fig. 7: detection-latency density under fault injection (PARSEC).

Paper: average latency below 1 us; worst case 2.7 us (ferret); 3 us
covers > 99.9% of detected faults; the density is right-skewed with a
long thin tail.
"""

from repro.experiments import fig7_latency

DYNAMIC_INSTRUCTIONS = 15_000
RUNS_PER_WORKLOAD = 3


def test_fig7_detection_latency(once):
    rows = once(fig7_latency.run,
                dynamic_instructions=DYNAMIC_INSTRUCTIONS,
                runs_per_workload=RUNS_PER_WORKLOAD)
    print()
    print(fig7_latency.format_results(rows))

    agg = fig7_latency.aggregate(rows)
    assert agg["total_injections"] > 50
    # Average detection latency below 1 us (paper headline).
    assert agg["mean_ns"] < 1000.0
    # Worst case stays within the same order as the paper's 2.7 us.
    assert agg["worst_ns"] < 6000.0
    # 3 us covers the overwhelming majority of detections.
    assert agg["coverage_within_3us"] > 0.98
    # The distribution is right-skewed: the first bins carry most mass.
    bins = fig7_latency.histogram(rows)
    head = sum(density for _, density in bins[:3])
    assert head > 0.5
