"""Fig. 6: MEEK vs EA-LockStep vs Nzdc slowdowns on SPEC06 + PARSEC.

Paper: MEEK geomean 1.4% (SPEC) / 4.4% (PARSEC); EA-LockStep 48.7% /
31.2%; Nzdc 94.2% / 60.2%; swaptions is MEEK's 22% outlier; Nzdc has
no result for gcc/omnetpp/xalancbmk/freqmine.
"""

from repro.experiments import fig6_performance

DYNAMIC_INSTRUCTIONS = 15_000


def test_fig6_performance(once):
    rows = once(fig6_performance.run,
                dynamic_instructions=DYNAMIC_INSTRUCTIONS)
    print()
    print(fig6_performance.format_results(rows))

    means = fig6_performance.geomeans(rows)
    for suite in ("spec06", "parsec"):
        # Ordering: MEEK < EA-LockStep < Nzdc, as in the paper.
        assert means[suite]["meek"] < means[suite]["lockstep"]
        assert means[suite]["lockstep"] < means[suite]["nzdc"]
        # MEEK stays within single-digit-percent overheads.
        assert means[suite]["meek"] < 1.10

    by_name = {r.name: r for r in rows}
    # swaptions is the outlier, well above the PARSEC geomean.
    assert by_name["swaptions"].meek > means["parsec"]["meek"]
    # The Nzdc compile failures carry no result (footnote 6).
    for name in ("gcc", "omnetpp", "xalancbmk", "freqmine"):
        assert by_name[name].nzdc is None
