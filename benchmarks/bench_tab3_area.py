"""Table III: hardware overhead of MEEK (TSMC 28nm figures).

Paper: BOOM 2.811 mm2; optimized Rocket 0.092 mm2 (vs default 0.078);
DEU 0.071 + F2 0.051 = 0.122 mm2 big-core wrapper (4.3% of BOOM);
little wrapper 0.059 mm2/core; total overhead 25.8% with 4 cores, vs
the DSN'18 24% estimate built on twelve little cores.
"""

import pytest

from repro.common.config import default_meek_config
from repro.experiments import tab3_area

def test_tab3_area(once):
    report = once(tab3_area.run)
    print()
    print(tab3_area.format_results(report))

    assert report["big_core_mm2"] == pytest.approx(2.811, abs=0.01)
    assert report["little_core_mm2"] == pytest.approx(0.092, abs=0.002)
    assert report["default_rocket_mm2"] == pytest.approx(0.078, abs=0.002)
    assert report["deu_mm2"] == pytest.approx(0.071)
    assert report["f2_mm2"] == pytest.approx(0.051)
    assert report["big_wrapper_mm2"] == pytest.approx(0.122)
    assert report["overhead_fraction"] == pytest.approx(0.258, abs=0.005)
    # The DEU + F2 wrapper is ~4.3% of the BOOM.
    assert (report["big_wrapper_mm2"] / report["big_core_mm2"]
            == pytest.approx(0.043, abs=0.002))
    # Equivalent-area lockstep: the interpolated core pair matches the
    # MEEK budget.
    pair = 2 * report["lockstep_core_mm2"]
    assert pair == pytest.approx(report["total_mm2"], rel=0.02)


def test_tab3_scaling_with_core_count(once):
    """Overhead scales with little-core count (the Sec. V-F point: the
    DSN'18 budget buys only a third of the little cores in RTL)."""
    report12 = tab3_area.run(default_meek_config(num_little_cores=12))
    report4 = tab3_area.run(default_meek_config(num_little_cores=4))
    assert report12["overhead_fraction"] > 3 * report4["overhead_fraction"] * 0.8
    once(lambda: None)
