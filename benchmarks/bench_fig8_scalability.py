"""Fig. 8: slowdown vs little-core count on PARSEC.

Paper: 2 cores 54.9% geomean slowdown, 4 cores 4.4%, 6 cores 0.3%
(every workload under 1%); superlinear decline with core count.
"""

from repro.experiments import fig8_scalability

DYNAMIC_INSTRUCTIONS = 12_000


def test_fig8_scalability(once):
    rows = once(fig8_scalability.run,
                dynamic_instructions=DYNAMIC_INSTRUCTIONS)
    print()
    print(fig8_scalability.format_results(rows))

    means = fig8_scalability.geomeans(rows)
    # Two little cores cannot keep up; the overhead is tens of percent.
    assert means[2] > 1.20
    # Four bring it to a few percent.
    assert means[4] < 1.10
    # Six make it essentially vanish.
    assert means[6] < 1.02
    # Monotone improvement for every workload (small tolerance: a
    # larger NoC grid slightly lengthens routes, so saturated-free
    # workloads can wiggle by a fraction of a percent).
    for row in rows:
        assert row.slowdowns[2] >= row.slowdowns[4] - 0.005
        assert row.slowdowns[4] >= row.slowdowns[6] - 0.005
    # Overhead declines faster than linearly in core count.
    overhead2 = means[2] - 1.0
    overhead4 = means[4] - 1.0
    assert overhead4 < overhead2 / 2.0
