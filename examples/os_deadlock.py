"""The Fig. 5 kernel deadlock, demonstrated and fixed.

Scenario (Sec. IV-C): the finite Load-Store Log makes the checker a
lock the big core needs; if the checker can overtake the main thread it
may page-fault and need a kernel lock the main thread holds — a cycle.
Keeping the checker one instruction behind makes the fault impossible.

Also shows the Algorithm 1/2 context-switch hooks in action: the exact
MEEK-ISA operation sequence the modified scheduler issues.

Run:  python examples/os_deadlock.py
"""

from repro.osmodel import MeekDevice, MeekScheduler, PageFaultScenario
from repro.osmodel.scheduler import make_checked_application


def demonstrate_deadlock():
    print("=== Fig. 5(a): checker may overtake the main thread ===")
    result = PageFaultScenario(one_instruction_behind=False).run()
    print(result)
    for tick, who, what in result.timeline[-4:]:
        print(f"  t={tick:4d} {who:8s} {what}")

    print("\n=== Fig. 5(b): checker kept one instruction behind ===")
    result = PageFaultScenario(one_instruction_behind=True).run()
    print(result)


def demonstrate_scheduler():
    print("\n=== Algorithm 1/2: MEEK hooks in the context switch ===")
    device = MeekDevice(num_little_cores=4)
    scheduler = MeekScheduler(device)
    app, checkers = make_checked_application("video_pipeline",
                                             checker_cores=(0, 1, 2, 3))
    scheduler.submit(app)
    running = scheduler.context_switch_big(current=None)
    print(f"dispatched {running.name}; MEEK ops issued:")
    for op in device.op_log:
        print(f"  {op}")
    for core, checker in enumerate(checkers):
        scheduler.context_switch_little(core, current=None,
                                        next_task=checker)
    print(f"little-core modes after dispatching checkers: {device.modes}")


if __name__ == "__main__":
    demonstrate_deadlock()
    demonstrate_scheduler()
