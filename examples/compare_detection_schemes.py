"""MEEK vs EA-LockStep vs Nzdc on one workload (Fig. 6 style).

Runs a synthetic SPEC-class workload under the three error-detection
schemes the paper compares and prints slowdown plus the cost structure
of each (area for the hardware schemes, instruction expansion for the
software one).

Run:  python examples/compare_detection_schemes.py [workload]
"""

import sys

from repro.analysis.area import boom_area_mm2, meek_area_report
from repro.analysis.report import format_table
from repro.baselines.lockstep import EaLockstep
from repro.baselines.nzdc import expansion_factor, run_nzdc
from repro.common.config import default_meek_config
from repro.core.system import MeekSystem, run_vanilla
from repro.workloads import generate_program, get_profile

WORKLOAD = sys.argv[1] if len(sys.argv) > 1 else "hmmer"
DYNAMIC_INSTRUCTIONS = 20_000


def main():
    program = generate_program(get_profile(WORKLOAD),
                               dynamic_instructions=DYNAMIC_INSTRUCTIONS)
    vanilla = run_vanilla(program)

    meek_config = default_meek_config()
    meek = MeekSystem(meek_config).run(program)
    area = meek_area_report(meek_config)

    lockstep = EaLockstep(meek_config)
    lockstep_result = lockstep.run(program)

    nzdc_result, transformed = run_nzdc(program)

    rows = [
        ["vanilla BOOM", 1.0, f"{boom_area_mm2():.2f} mm2", "-"],
        ["MEEK (4 little cores)", meek.cycles / vanilla.cycles,
         f"{area['total_mm2']:.2f} mm2 (+{area['overhead_fraction']:.0%})",
         f"{len(meek.segments)} segments, all verified: "
         f"{meek.all_segments_verified}"],
        ["EA-LockStep", lockstep_result.cycles / vanilla.cycles,
         f"{lockstep.pair_area_mm2:.2f} mm2 "
         f"(scale {lockstep.scale_factor:.2f})",
         "pin-level compare each cycle"],
        ["Nzdc (software)", nzdc_result.cycles / vanilla.cycles,
         f"{boom_area_mm2():.2f} mm2 (no HW)",
         f"{expansion_factor(program, transformed):.2f}x instructions"],
    ]
    print(format_table(["scheme", "slowdown", "area", "notes"], rows,
                       title=f"Error-detection schemes on '{WORKLOAD}'"))


if __name__ == "__main__":
    main()
