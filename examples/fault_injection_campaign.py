"""Fault-injection campaign on one PARSEC workload (Fig. 7 style).

Injects single-bit faults into the data forwarded through F2 while a
synthetic `ferret` runs on the big core — the workload with the paper's
worst-case 2.7 us detection latency — and plots the latency density.

Run:  python examples/fault_injection_campaign.py [workload]
"""

import sys

from repro.analysis.report import render_histogram
from repro.analysis.stats import coverage_within, density_histogram, mean
from repro.common.config import default_meek_config
from repro.common.prng import DeterministicRng
from repro.core.faults import FaultInjector
from repro.core.system import MeekSystem
from repro.workloads import generate_program, get_profile

WORKLOAD = sys.argv[1] if len(sys.argv) > 1 else "ferret"
TRIALS = 4
DYNAMIC_INSTRUCTIONS = 20_000


def main():
    profile = get_profile(WORKLOAD)
    program = generate_program(profile,
                               dynamic_instructions=DYNAMIC_INSTRUCTIONS)
    latencies_ns = []
    injected = detected = 0
    for trial in range(TRIALS):
        rng = DeterministicRng(f"campaign/{WORKLOAD}/{trial}")
        injector = FaultInjector(rng, rate=0.008)
        system = MeekSystem(default_meek_config(), injector=injector)
        result = system.run(program)
        injected += len(injector.injections)
        detected += injector.detected_count
        latencies_ns.extend(result.detection_latencies_ns())

    print(f"workload={WORKLOAD}: {injected} faults injected, "
          f"{detected} detected ({detected / injected:.0%}); "
          f"undetected faults hit dead values (masked)")
    if latencies_ns:
        print(f"mean latency {mean(latencies_ns):.0f} ns, "
              f"worst {max(latencies_ns):.0f} ns, "
              f"<=3us coverage {coverage_within(latencies_ns, 3000):.1%}\n")
        print("detection-latency density (ns):")
        print(render_histogram(density_histogram(latencies_ns, 200.0,
                                                 max_value=3000.0)))


if __name__ == "__main__":
    main()
