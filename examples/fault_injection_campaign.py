"""Fault-injection campaign on one PARSEC workload (Fig. 7 style).

Injects single-bit faults into the data forwarded through F2 while a
synthetic `ferret` runs on the big core — the workload with the paper's
worst-case 2.7 us detection latency — and plots the latency density.

Trials are submitted through the campaign engine, so they shard across
worker processes (``--jobs``) with bit-identical results: each trial's
injector stream is seeded from its own identity, never from shared
mutable state.

Run:  python examples/fault_injection_campaign.py [workload] [--jobs N]
"""

import argparse

from repro.analysis.report import render_histogram
from repro.analysis.stats import coverage_within, density_histogram, mean
from repro.campaign import CampaignPoint, CampaignSpec, run_campaign

TRIALS = 4
DYNAMIC_INSTRUCTIONS = 20_000


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("workload", nargs="?", default="ferret")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker shards (default $REPRO_JOBS or 1)")
    parser.add_argument("--fault-model", default=None,
                        help="fault model (single, burst:width=K, "
                             "correlated:span=N, stuckat[:bit=B,value=V])")
    parser.add_argument("--fault-targets", default=None,
                        help="injection targets (runtime, status, dcbuf, "
                             "fabric, all, or exact structures)")
    args = parser.parse_args()

    fault_params = {}
    if args.fault_model:
        fault_params["fault_model"] = args.fault_model
    if args.fault_targets:
        fault_params["fault_targets"] = args.fault_targets
    spec = CampaignSpec(
        name=f"example-{args.workload}",
        points=[CampaignPoint(
            task="inject", workload=args.workload,
            instructions=DYNAMIC_INSTRUCTIONS,
            params={"rate": 0.008, "trial": trial, **fault_params,
                    "rng_key": f"campaign/{args.workload}/{trial}"})
            for trial in range(TRIALS)])
    result = run_campaign(spec, jobs=args.jobs)
    if not result.all_ok:
        raise SystemExit("\n".join(f"{r.point_id}: {r.error}"
                                   for r in result.failed))

    injected = sum(r.metrics["injections"] for r in result.ok)
    detected = sum(r.metrics["detected"] for r in result.ok)
    latencies_ns = [lat for r in result.ok
                    for lat in r.metrics["latencies_ns"]]

    if not injected:
        print(f"workload={args.workload}: no faults injected at this "
              f"rate; raise --trials or the rate")
        return
    print(f"workload={args.workload}: {injected} faults injected, "
          f"{detected} detected ({detected / injected:.0%}); "
          f"undetected faults hit dead values (masked)")
    if latencies_ns:
        print(f"mean latency {mean(latencies_ns):.0f} ns, "
              f"worst {max(latencies_ns):.0f} ns, "
              f"<=3us coverage {coverage_within(latencies_ns, 3000):.1%}\n")
        print("detection-latency density (ns):")
        print(render_histogram(density_histogram(latencies_ns, 200.0,
                                                 max_value=3000.0)))

    from repro.analysis.coverage import CoverageMap, format_coverage
    coverage = CoverageMap()
    for r in result.ok:
        coverage.merge_cells(r.metrics.get("coverage"))
    if coverage:
        print(format_coverage(coverage, title="per-structure coverage"))


if __name__ == "__main__":
    main()
