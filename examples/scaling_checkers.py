"""How many little cores does checking need? (Fig. 8 style.)

Sweeps the little-core count for a few PARSEC workloads and prints the
big-core slowdown: two cores cannot keep up, four bring the overhead to
a few percent, six make it vanish — the superlinear decline the paper
reports.

Run:  python examples/scaling_checkers.py
"""

from repro.analysis.report import format_table
from repro.common.config import default_meek_config
from repro.core.system import MeekSystem, run_vanilla, slowdown
from repro.workloads import generate_program, get_profile

WORKLOADS = ("blackscholes", "fluidanimate", "swaptions")
CORE_COUNTS = (1, 2, 4, 6, 8)
DYNAMIC_INSTRUCTIONS = 15_000


def main():
    rows = []
    for name in WORKLOADS:
        program = generate_program(get_profile(name),
                                   dynamic_instructions=DYNAMIC_INSTRUCTIONS)
        vanilla = run_vanilla(program)
        row = [name]
        for cores in CORE_COUNTS:
            config = default_meek_config(num_little_cores=cores)
            result = MeekSystem(config).run(program)
            row.append(slowdown(result, vanilla))
        rows.append(row)
    print(format_table(["workload"] + [f"{c}-core" for c in CORE_COUNTS],
                       rows,
                       title="Big-core slowdown vs number of little cores"))
    print("\nNote how swaptions (division-heavy) needs the most checker "
          "compute,\nexactly as in Fig. 6/8 of the paper.")


if __name__ == "__main__":
    main()
