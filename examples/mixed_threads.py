"""Little cores doing double duty: verification + other threads.

Fig. 1 of the paper shows little cores alternating between checking the
big core's segments and running ordinary application threads.  This
example runs a checked workload, then schedules background threads into
the little cores' verification gaps and reports how much non-checking
work the cluster still delivered.

Run:  python examples/mixed_threads.py
"""

from repro.analysis.report import format_table
from repro.common.config import default_meek_config
from repro.core.system import MeekSystem
from repro.osmodel import BackgroundThread, MixedWorkloadSchedule, validate_schedule
from repro.workloads import generate_program, get_profile


def main():
    program = generate_program(get_profile("ferret"),
                               dynamic_instructions=15_000)
    result = MeekSystem(default_meek_config()).run(program)
    print(f"checked run: {result.instructions} instructions, "
          f"{len(result.segments)} segments, "
          f"all verified: {result.all_segments_verified}")

    schedule = MixedWorkloadSchedule(result)
    threads = [BackgroundThread(f"worker{i}", required_cycles=4000)
               for i in range(6)]
    schedule.schedule(threads)
    validate_schedule(schedule, threads)

    rows = []
    for thread in threads:
        status = (f"done @ {thread.finish_cycle:.0f}" if thread.done
                  else f"{thread.completed_cycles}/"
                       f"{thread.required_cycles} cycles")
        rows.append([thread.name, len(thread.slices), status])
    print(format_table(["thread", "slices", "status"], rows,
                       title="Background threads in verification gaps"))

    report = schedule.report(threads)
    print("\nper-core verification utilization:")
    for core, util in report["verification_utilization"].items():
        print(f"  little core {core}: {util:.0%} verifying, "
              f"{1 - util:.0%} available for other threads")
    print(f"background work delivered: {report['background_cycles']:.0f} "
          f"little-core cycles "
          f"({report['background_utilization']:.0%} of cluster capacity)")


if __name__ == "__main__":
    main()
