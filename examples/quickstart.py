"""Quickstart: detect a hardware fault with MEEK.

Builds the paper's evaluated system (one BOOM-class big core, four
optimized Rocket-class little cores behind the F2 fabric), runs a small
assembly program under checking, then re-runs it with a single-bit
fault injected into the forwarded data and shows the detection.

Run:  python examples/quickstart.py
"""

from repro.common.config import default_meek_config
from repro.common.prng import DeterministicRng
from repro.core.faults import FaultInjector
from repro.core.system import MeekSystem, run_vanilla, slowdown
from repro.isa import assemble

PROGRAM = assemble(
    """
        li   t0, 0          # induction variable
        li   t1, 3000       # trip count
        li   t2, 0x2000     # array base
    loop:
        sd   t0, 0(t2)      # store the counter
        ld   t3, 0(t2)      # load it back
        add  t4, t4, t3     # accumulate
        addi t2, t2, 8
        addi t0, t0, 1
        bne  t0, t1, loop
        ecall
    """,
    name="quickstart",
)


def main():
    # 1. Baseline: the vanilla big core.
    vanilla = run_vanilla(PROGRAM)
    print(f"vanilla      : {vanilla.instructions} instructions in "
          f"{vanilla.cycles} cycles (IPC {vanilla.ipc:.2f})")

    # 2. The same program under MEEK checking.
    system = MeekSystem(default_meek_config())
    checked = system.run(PROGRAM)
    print(f"MEEK         : {checked.cycles:.0f} cycles "
          f"({slowdown(checked, vanilla):.3f}x slowdown, "
          f"{len(checked.segments)} checkpoint segments, "
          f"all verified: {checked.all_segments_verified})")

    # 3. Inject a single-bit fault into the forwarded data.
    injector = FaultInjector(DeterministicRng(7, "quickstart"), rate=0.002)
    faulty_system = MeekSystem(default_meek_config(), injector=injector)
    faulty = faulty_system.run(PROGRAM)
    print(f"fault run    : {len(injector.injections)} fault(s) injected")
    for record in injector.injections:
        if record.detected:
            latency_ns = faulty.cycles_to_ns(record.latency_cycles)
            print(f"  detected   : {record.target.value} bit {record.bit} "
                  f"({record.detail}) -> {record.detect_reason} "
                  f"after {latency_ns:.0f} ns")
        else:
            print(f"  undetected : {record.target.value} bit {record.bit} "
                  f"({record.detail}) — masked (dead value)")


if __name__ == "__main__":
    main()
